/** @file Unit and property tests for the window-limited core model. */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "core/core_model.hh"
#include "engine/trace_recorder.hh"

using namespace mondrian;

namespace {

/** Fixed-latency memory path with optional cache-hit behavior. */
class FakePath : public MemoryPath
{
  public:
    explicit FakePath(EventQueue &eq, Tick latency, bool immediate = false,
                      Cycles hit_latency = 2)
        : eq_(eq), latency_(latency), immediate_(immediate),
          hitLatency_(hit_latency)
    {}

    Result
    request(Tick when, Addr, std::uint32_t, bool, bool, bool,
            DoneFn done) override
    {
        ++requests;
        if (immediate_)
            return Result{true, hitLatency_};
        Tick t = when + latency_;
        eq_.schedule(t, [done = std::move(done), t]() { done(t); });
        return Result{false, 0};
    }

    unsigned requests = 0;

  private:
    EventQueue &eq_;
    Tick latency_;
    bool immediate_;
    Cycles hitLatency_;
};

CoreConfig
testCore(unsigned loads = 4, unsigned stores = 4, unsigned streams = 4)
{
    CoreConfig c;
    c.period = 1000;
    c.maxOutstandingLoads = loads;
    c.maxOutstandingStores = stores;
    c.streamDepth = streams;
    return c;
}

Tick
runTrace(const KernelTrace &trace, const CoreConfig &cfg, Tick mem_latency,
         bool immediate = false)
{
    EventQueue eq;
    FakePath path(eq, mem_latency, immediate);
    TraceCore core(eq, cfg, path, 0);
    core.setTrace(&trace);
    core.start();
    eq.run();
    EXPECT_TRUE(core.finished());
    return core.stats().finishedAt;
}

} // namespace

TEST(CoreModel, ComputeAdvancesAtClock)
{
    KernelTrace t;
    t.addCompute(100);
    EXPECT_EQ(runTrace(t, testCore(), 0), 100u * 1000);
}

TEST(CoreModel, SingleLoadLatency)
{
    KernelTrace t;
    t.add(TraceOp::load(0, 64));
    EXPECT_EQ(runTrace(t, testCore(), 50000), 50000u);
}

TEST(CoreModel, WindowOverlapsLoads)
{
    // 8 loads, window 4, latency 100 ns: two latency epochs.
    KernelTrace t;
    for (int i = 0; i < 8; ++i)
        t.add(TraceOp::load(Addr(i) * 64, 64));
    Tick dt = runTrace(t, testCore(4, 4, 4), 100000);
    EXPECT_EQ(dt, 200000u);
}

/** Property (§3.2): throughput of random loads = window x size / latency. */
class MlpTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(MlpTest, BandwidthScalesWithWindow)
{
    const unsigned window = GetParam();
    const Tick lat = 100000; // 100 ns
    const unsigned n = 200;
    KernelTrace t;
    for (unsigned i = 0; i < n; ++i)
        t.add(TraceOp::load(Addr(i) * 64, 64));
    Tick dt = runTrace(t, testCore(window, 4, 4), lat);
    double expected = static_cast<double>(n) / window * lat;
    EXPECT_NEAR(static_cast<double>(dt), expected, expected * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Windows, MlpTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 20u, 50u));

TEST(CoreModel, BlockingLoadsSerialize)
{
    KernelTrace t;
    for (int i = 0; i < 10; ++i)
        t.add(TraceOp::loadBlocking(Addr(i) * 64, 8));
    // Window 8 but each load gates the next: 10 x latency.
    Tick dt = runTrace(t, testCore(8, 4, 4), 40000);
    EXPECT_EQ(dt, 400000u);
}

TEST(CoreModel, BlockingLoadHitDoesNotStall)
{
    KernelTrace t;
    for (int i = 0; i < 10; ++i)
        t.add(TraceOp::loadBlocking(Addr(i) * 64, 8));
    Tick dt = runTrace(t, testCore(8, 4, 4), 40000, /*immediate=*/true);
    EXPECT_EQ(dt, 10u * 2 * 1000); // ten 2-cycle hits
}

TEST(CoreModel, StoreBufferBackpressure)
{
    KernelTrace t;
    for (int i = 0; i < 32; ++i)
        t.add(TraceOp::store(Addr(i) * 64, 16));
    Tick dt = runTrace(t, testCore(4, 8, 4), 80000);
    // 32 stores, 8 slots, 80 ns completion: 4 epochs.
    EXPECT_EQ(dt, 4u * 80000);
}

TEST(CoreModel, StreamDepthGovernsStreams)
{
    KernelTrace t;
    for (int i = 0; i < 16; ++i)
        t.add(TraceOp::streamRead(Addr(i) * 256, 256));
    Tick dt = runTrace(t, testCore(2, 2, 8), 100000);
    EXPECT_EQ(dt, 200000u); // 16 streams / depth 8 = 2 epochs
}

TEST(CoreModel, FenceDrains)
{
    KernelTrace t;
    t.add(TraceOp::store(0, 16));
    t.add(TraceOp::fence());
    t.addCompute(10);
    Tick dt = runTrace(t, testCore(), 70000);
    EXPECT_EQ(dt, 70000u + 10000u);
}

TEST(CoreModel, ComputeAndMemoryOverlap)
{
    KernelTrace t;
    t.add(TraceOp::load(0, 64));
    t.addCompute(100); // 100 ns of compute overlaps the 100 ns load
    Tick dt = runTrace(t, testCore(), 100000);
    EXPECT_EQ(dt, 100000u);
}

TEST(CoreModel, StallAccounting)
{
    EventQueue eq;
    FakePath path(eq, 100000);
    KernelTrace t;
    for (int i = 0; i < 4; ++i)
        t.add(TraceOp::loadBlocking(Addr(i) * 64, 8));
    TraceCore core(eq, testCore(), path, 0);
    core.setTrace(&t);
    core.start();
    eq.run();
    EXPECT_EQ(core.stats().stallTicks, core.stats().stallLoadTicks);
    EXPECT_GT(core.stats().stallLoadTicks, 0u);
    EXPECT_LT(core.utilization(), 0.05);
}

TEST(CoreModel, Presets)
{
    EXPECT_EQ(cortexA57().period, 500u);
    EXPECT_EQ(krait400().period, 1000u);
    EXPECT_EQ(cortexA35Simd().period, 1000u);
    EXPECT_GT(cortexA57().maxOutstandingLoads,
              krait400().maxOutstandingLoads);
    EXPECT_GT(cortexA57().peakPowerWatts, krait400().peakPowerWatts);
    EXPECT_LT(cortexA35Simd().peakPowerWatts, krait400().peakPowerWatts);
}

namespace {

/** Replay @p trace and return the full core stats. */
CoreStats
statsOf(const KernelTrace &trace, const CoreConfig &cfg, Tick mem_latency)
{
    EventQueue eq;
    FakePath path(eq, mem_latency);
    TraceCore core(eq, cfg, path, 0);
    core.setTrace(&trace);
    core.start();
    eq.run();
    EXPECT_TRUE(core.finished());
    return core.stats();
}

/** Expanded copy of @p trace as its own KernelTrace. */
KernelTrace
expandedTrace(const KernelTrace &trace)
{
    KernelTrace out;
    for (const TraceOp &op : trace.expanded())
        out.add(op);
    return out;
}

} // namespace

/**
 * The RLE determinism contract: replaying a run-length-encoded trace must
 * produce bit-identical stats to replaying its expanded form, under
 * window pressure (stalls mid-run) and with interleaved compute.
 */
TEST(CoreModelRle, RunReplayMatchesExpandedReplay)
{
    TraceRecorder rec;
    rec.scanFixed(0, 500, 16, 64, true, 1.25); // stream run + compute
    rec.fence();
    rec.readRange(0x8000, 64 * 300 + 32, 64, false); // load run (stalls)
    rec.writeRange(0x20000, 256 * 64, 256);          // store run (stalls)
    rec.fence();
    rec.scanFixed(0x40000, 333, 16, 256, false, 0.3);
    KernelTrace rle = rec.take();
    KernelTrace plain = expandedTrace(rle);
    ASSERT_LT(rle.size(), plain.size()); // the encoding is actually used

    for (Tick lat : {Tick{0}, Tick{40000}, Tick{100000}}) {
        CoreStats a = statsOf(rle, testCore(4, 4, 4), lat);
        CoreStats b = statsOf(plain, testCore(4, 4, 4), lat);
        EXPECT_EQ(a.finishedAt, b.finishedAt) << "latency " << lat;
        EXPECT_EQ(a.computeTicks, b.computeTicks);
        EXPECT_EQ(a.stallTicks, b.stallTicks);
        EXPECT_EQ(a.stallStoreTicks, b.stallStoreTicks);
        EXPECT_EQ(a.stallStreamTicks, b.stallStreamTicks);
        EXPECT_EQ(a.stallLoadTicks, b.stallLoadTicks);
        EXPECT_EQ(a.stallFenceTicks, b.stallFenceTicks);
        EXPECT_EQ(a.memOps, b.memOps);
        EXPECT_EQ(a.bytesFromMem, b.bytesFromMem);
        EXPECT_EQ(a.bytesToMem, b.bytesToMem);
    }
}

TEST(CoreModelRle, RunStallsInsideRunResume)
{
    // A run longer than the window must stall and resume mid-run without
    // losing position: 32 loads, window 2, latency L => ~16 epochs.
    KernelTrace t;
    t.add(TraceOp::loadRun(0, 64, 32));
    Tick dt = runTrace(t, testCore(2, 2, 2), 100000);
    EXPECT_EQ(dt, 16u * 100000);
}

TEST(CoreModel, OnFinishFires)
{
    EventQueue eq;
    FakePath path(eq, 1000);
    KernelTrace t;
    t.addCompute(5);
    TraceCore core(eq, testCore(), path, 7);
    core.setTrace(&t);
    bool fired = false;
    core.onFinish = [&](unsigned id, Tick when) {
        fired = true;
        EXPECT_EQ(id, 7u);
        EXPECT_EQ(when, 5000u);
    };
    core.start();
    eq.run();
    EXPECT_TRUE(fired);
}
