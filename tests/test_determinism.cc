/**
 * @file
 * Cross-cutting invariants: simulation determinism (identical seeds give
 * bit-identical timing, traffic and energy), monotone scaling, and
 * conservation properties that must hold across the whole stack.
 */

#include <gtest/gtest.h>

#include "system/report.hh"
#include "system/runner.hh"

using namespace mondrian;

namespace {

RunResult
runOnce(SystemKind kind, OpKind op, std::uint64_t tuples,
        std::uint64_t seed)
{
    WorkloadConfig wl;
    wl.tuples = tuples;
    wl.seed = seed;
    Runner runner(wl);
    return runner.run(kind, op);
}

} // namespace

class DeterminismTest
    : public ::testing::TestWithParam<std::pair<SystemKind, OpKind>>
{};

TEST_P(DeterminismTest, IdenticalSeedsGiveIdenticalRuns)
{
    auto [kind, op] = GetParam();
    RunResult a = runOnce(kind, op, 1u << 12, 99);
    RunResult b = runOnce(kind, op, 1u << 12, 99);
    EXPECT_EQ(a.totalTime, b.totalTime);
    EXPECT_EQ(a.partitionTime, b.partitionTime);
    EXPECT_EQ(a.probeTime, b.probeTime);
    EXPECT_EQ(a.activity.rowActivations, b.activity.rowActivations);
    EXPECT_EQ(a.activity.dramBitsMoved, b.activity.dramBitsMoved);
    EXPECT_EQ(a.activity.serdesBusyBits, b.activity.serdesBusyBits);
    EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
    EXPECT_EQ(a.scanMatches, b.scanMatches);
    EXPECT_EQ(a.joinMatches, b.joinMatches);
    EXPECT_EQ(a.aggChecksum, b.aggChecksum);
}

INSTANTIATE_TEST_SUITE_P(
    SystemsByOps, DeterminismTest,
    ::testing::Values(
        std::make_pair(SystemKind::kCpu, OpKind::kJoin),
        std::make_pair(SystemKind::kNmp, OpKind::kJoin),
        std::make_pair(SystemKind::kMondrian, OpKind::kJoin),
        std::make_pair(SystemKind::kMondrian, OpKind::kSort),
        std::make_pair(SystemKind::kNmpSeq, OpKind::kGroupBy),
        std::make_pair(SystemKind::kCpu, OpKind::kScan)));

TEST(Scaling, MoreTuplesTakeLonger)
{
    for (SystemKind k : {SystemKind::kCpu, SystemKind::kMondrian}) {
        RunResult small = runOnce(k, OpKind::kJoin, 1u << 11, 5);
        RunResult large = runOnce(k, OpKind::kJoin, 1u << 13, 5);
        EXPECT_GT(large.totalTime, small.totalTime) << systemKindName(k);
        EXPECT_GT(large.energy.total(), small.energy.total());
    }
}

TEST(Scaling, NearlyLinearInTuplesForStreamingOps)
{
    // Mondrian scan is bandwidth-bound: 4x the tuples ~= 4x the time.
    RunResult small = runOnce(SystemKind::kMondrian, OpKind::kScan,
                              1u << 14, 5);
    RunResult large = runOnce(SystemKind::kMondrian, OpKind::kScan,
                              1u << 16, 5);
    double ratio = static_cast<double>(large.totalTime) /
                   static_cast<double>(small.totalTime);
    EXPECT_GT(ratio, 3.0);
    EXPECT_LT(ratio, 5.5);
}

TEST(Conservation, DramTrafficCoversPayload)
{
    // Every shuffled byte must be read from and written to DRAM at least
    // once; row-granular transfers may move more, never less.
    std::uint64_t tuples = 1u << 12;
    RunResult r = runOnce(SystemKind::kNmpPerm, OpKind::kJoin, tuples, 42);
    std::uint64_t s_bytes = tuples * kTupleBytes;
    EXPECT_GT(r.activity.dramBitsMoved / 8, 2 * s_bytes);
}

TEST(Conservation, EnergyCategoriesNonNegative)
{
    for (SystemKind k : {SystemKind::kCpu, SystemKind::kNmp,
                         SystemKind::kMondrianNoperm,
                         SystemKind::kMondrian}) {
        RunResult r = runOnce(k, OpKind::kGroupBy, 1u << 12, 3);
        EXPECT_GE(r.energy.dramDynamic, 0.0);
        EXPECT_GE(r.energy.dramStatic, 0.0);
        EXPECT_GE(r.energy.cores, 0.0);
        EXPECT_GE(r.energy.network, 0.0);
        EXPECT_GT(r.energy.total(), 0.0);
    }
}

TEST(Ordering, HeadlineResultHolds)
{
    // The paper's headline, as a regression guard: CPU < NMP < NMP-perm
    // < Mondrian on the Join total, and Mondrian most efficient.
    RunResult cpu = runOnce(SystemKind::kCpu, OpKind::kJoin, 1u << 14, 42);
    RunResult nmp = runOnce(SystemKind::kNmp, OpKind::kJoin, 1u << 14, 42);
    RunResult perm = runOnce(SystemKind::kNmpPerm, OpKind::kJoin,
                             1u << 14, 42);
    RunResult mon = runOnce(SystemKind::kMondrian, OpKind::kJoin,
                            1u << 14, 42);
    EXPECT_LT(nmp.totalTime, cpu.totalTime);
    EXPECT_LT(perm.totalTime, nmp.totalTime);
    EXPECT_LT(mon.totalTime, nmp.totalTime);
    // Partitioning, the co-design's target, is strictly fastest on
    // Mondrian. (At very small per-vault fills the sort-based probe can
    // cost slightly more than NMP-perm's hash probe, so the total is
    // compared against NMP above.)
    EXPECT_LT(mon.partitionTime, perm.partitionTime);
    EXPECT_GT(efficiencyImprovement(cpu, mon),
              efficiencyImprovement(cpu, nmp));
}

TEST(Ordering, PermutabilityOrthogonalToProbe)
{
    // NMP and NMP-perm share the probe algorithm: probe times must be
    // close (identical traces, near-identical warm DRAM state).
    RunResult nmp = runOnce(SystemKind::kNmp, OpKind::kJoin, 1u << 13, 8);
    RunResult perm = runOnce(SystemKind::kNmpPerm, OpKind::kJoin,
                             1u << 13, 8);
    double ratio = static_cast<double>(nmp.probeTime) /
                   static_cast<double>(perm.probeTime);
    EXPECT_GT(ratio, 0.9);
    EXPECT_LT(ratio, 1.1);
}
