/** @file Hand-checked unit tests for the energy model (Table 4). */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"

using namespace mondrian;

namespace {

EnergyActivity
baseActivity()
{
    EnergyActivity a;
    a.elapsed = kSecond; // 1 s makes wattage == joules
    a.numCubes = 4;
    a.numSerdesLinks = 0;
    a.numCores = 0;
    return a;
}

} // namespace

TEST(EnergyModel, DramDynamic)
{
    EnergyModel m;
    EnergyActivity a = baseActivity();
    a.rowActivations = 1'000'000; // 1M x 0.65 nJ = 0.65 mJ
    a.dramBitsMoved = 8'000'000;  // 8 Mbit x 2 pJ = 16 uJ
    auto e = m.compute(a);
    EXPECT_NEAR(e.dramDynamic, 0.65e-3 + 16e-6, 1e-9);
}

TEST(EnergyModel, DramStaticScalesWithCubesAndTime)
{
    EnergyModel m;
    EnergyActivity a = baseActivity();
    auto e1 = m.compute(a);
    EXPECT_NEAR(e1.dramStatic, 4 * 0.98, 1e-9);
    a.elapsed = kSecond / 2;
    EXPECT_NEAR(m.compute(a).dramStatic, 2 * 0.98, 1e-9);
}

TEST(EnergyModel, CoreUtilizationScaling)
{
    EnergyModel m;
    EnergyActivity a = baseActivity();
    a.numCores = 10;
    a.corePeakWattsEach = 2.0;
    a.coreUtilization = 1.0;
    EXPECT_NEAR(m.compute(a).cores, 20.0, 1e-9);
    a.coreUtilization = 0.0;
    // Idle floor: 30% of peak.
    EXPECT_NEAR(m.compute(a).cores, 6.0, 1e-9);
}

TEST(EnergyModel, LlcAddsAccessAndLeak)
{
    EnergyModel m;
    EnergyActivity a = baseActivity();
    a.hasLlc = true;
    a.llcAccesses = 1'000'000; // 1M x 0.09 nJ = 90 uJ
    auto e = m.compute(a);
    EXPECT_NEAR(e.cores, 90e-6 + 0.110, 1e-9);
}

TEST(EnergyModel, SerdesIdlePlusBusy)
{
    EnergyModel m;
    EnergyActivity a = baseActivity();
    a.numSerdesLinks = 1;
    // One 160 Gb/s link for 1 s = 160e9 bit slots.
    a.serdesBusyBits = 60'000'000'000; // 60 Gbit busy
    auto e = m.compute(a);
    double noc_leak = 0.030 * 4; // 4 stacks of NOC leakage for 1 s
    double expect = 60e9 * 3e-12 + (160e9 - 60e9) * 1e-12 + noc_leak;
    EXPECT_NEAR(e.network, expect, 1e-6);
}

TEST(EnergyModel, SerdesBusyClampsAtLineRate)
{
    EnergyModel m;
    EnergyActivity a = baseActivity();
    a.numSerdesLinks = 1;
    a.serdesBusyBits = 400'000'000'000; // more than the link can carry
    auto e = m.compute(a);
    EXPECT_NEAR(e.network, 160e9 * 3e-12 + 0.030 * 4, 1e-6);
}

TEST(EnergyModel, NocDynamicAndLeak)
{
    EnergyCoefficients coeff;
    EnergyModel m(coeff);
    EnergyActivity a = baseActivity();
    a.meshBitHops = 1'000'000'000'000; // 1 Tbit-hop
    auto e = m.compute(a);
    double noc_dyn = 1e12 * coeff.nocPicojoulePerBitPerMm *
                     coeff.nocHopMm * 1e-12;
    double noc_leak = coeff.nocLeakWattPerStack * 4;
    EXPECT_NEAR(e.network, noc_dyn + noc_leak, 1e-6);
}

TEST(EnergyModel, TotalSumsCategories)
{
    EnergyModel m;
    EnergyActivity a = baseActivity();
    a.numCores = 4;
    a.corePeakWattsEach = 1.0;
    a.coreUtilization = 0.5;
    a.rowActivations = 1000;
    a.numSerdesLinks = 2;
    auto e = m.compute(a);
    EXPECT_DOUBLE_EQ(e.total(), e.dramDynamic + e.dramStatic + e.cores +
                                    e.network);
}
