/**
 * @file
 * Output-identity tests for the event-count-reduction transforms
 * (docs/perf.md): completion coalescing, closed-form RLE run batching,
 * and the calendar-queue empty-bucket skip-ahead. Each transform claims
 * to change only *how fast* the simulator reaches its answer, never the
 * answer — these tests pin that claim at three levels: the event queue
 * against an exact (tick, insertion-seq) oracle, the cache batch against
 * the per-access loop it replaces, and whole Machine runs against their
 * untransformed twins.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "core/cache.hh"
#include "engine/ops.hh"
#include "engine/workload.hh"
#include "sim/event_queue.hh"
#include "system/machine.hh"

using namespace mondrian;

namespace {

std::uint64_t
lcgNext(std::uint64_t &s)
{
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return s;
}

} // namespace

// --- Completion coalescing: followers vs. plain scheduling -------------

TEST(EventCoalescing, FollowersRunInsideHeadEvent)
{
    EventQueue eq;
    eq.setCoalescing(true);
    std::vector<int> order;
    eq.scheduleCoalesced(10, [&] { order.push_back(0); });
    eq.scheduleCoalesced(10, [&] { order.push_back(1); });
    eq.scheduleCoalesced(10, [&] { order.push_back(2); });
    EXPECT_EQ(eq.pending(), 3u); // followers still count as pending
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    // One real pop, two absorbed callbacks.
    EXPECT_EQ(eq.executed(), 1u);
    EXPECT_EQ(eq.coalesced(), 2u);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventCoalescing, InterveningScheduleBreaksChain)
{
    // A plain schedule() between two coalescing candidates consumes a
    // sequence number, so the second candidate may no longer join the
    // first — doing so would run it ahead of the intervening event.
    EventQueue eq;
    eq.setCoalescing(true);
    std::vector<int> order;
    eq.scheduleCoalesced(10, [&] { order.push_back(0); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.scheduleCoalesced(10, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(eq.executed(), 3u);
    EXPECT_EQ(eq.coalesced(), 0u);
}

TEST(EventCoalescing, ExecutingCandidateIsNotJoined)
{
    // scheduleCoalesced() from inside the candidate's own callback: the
    // candidate has already popped, so appending a follower would be a
    // use-after-run. The (now, seq) pending check must route the callback
    // through a real schedule instead.
    EventQueue eq;
    eq.setCoalescing(true);
    std::vector<int> order;
    eq.scheduleCoalesced(10, [&] {
        order.push_back(0);
        eq.scheduleCoalesced(10, [&] { order.push_back(1); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    EXPECT_EQ(eq.executed(), 2u);
    EXPECT_EQ(eq.coalesced(), 0u);
}

namespace {

/**
 * Deterministic scheduling script mixing every coalescing-relevant
 * pattern: same-tick completion bursts, chain-breaking plain schedules,
 * ticks in the past-relative-to-candidate, far-future overflow events,
 * and bursts issued at runtime from inside executing events. The script
 * is identical for both queues; only the coalescing toggle differs, so
 * the pop order must not.
 */
std::vector<int>
runCoalescingScript(bool coalesce, std::uint64_t &executed,
                    std::uint64_t &coalesced)
{
    EventQueue eq;
    eq.setCoalescing(coalesce);
    std::vector<int> order;
    int next_id = 0;

    // Runtime stage: each burst head reschedules the next burst through
    // scheduleCoalesced, the completion pattern the vault path produces.
    struct Driver
    {
        EventQueue &eq;
        std::vector<int> &order;
        std::uint64_t rng;
        int rounds;
        int &next_id;

        void
        burst()
        {
            const Tick t = eq.now() + 1 + (lcgNext(rng) >> 40) % 300;
            const unsigned n = 1 + (lcgNext(rng) >> 40) % 6;
            for (unsigned i = 0; i < n; ++i) {
                const int id = next_id++;
                if ((lcgNext(rng) >> 40) % 8 == 0) // occasional breaker
                    eq.schedule(t, [this, id] { order.push_back(id); });
                else
                    eq.scheduleCoalesced(
                        t, [this, id] { order.push_back(id); });
            }
            if (--rounds > 0) {
                const int id = next_id++;
                eq.scheduleCoalesced(t, [this, id] {
                    order.push_back(id);
                    burst();
                });
            }
        }
    };
    Driver driver{eq, order, 99, 400, next_id};

    // Static stage: a pseudo-random pre-scheduled mix.
    std::uint64_t rng = 7;
    Tick frontier = 0;
    for (int i = 0; i < 1500; ++i) {
        switch ((lcgNext(rng) >> 33) % 8) {
          case 0: // advance the frontier
            frontier += 1 + (lcgNext(rng) >> 40) % 500;
            break;
          case 1: { // chain breaker at the same tick
            const int id = next_id++;
            eq.schedule(frontier, [&order, id] { order.push_back(id); });
            break;
          }
          case 2: { // far-future event (overflow heap, no slot to chain)
            const Tick t = frontier + 10'000'000 +
                           (lcgNext(rng) >> 35) % 100'000'000;
            const int id = next_id++;
            eq.scheduleCoalesced(t,
                                 [&order, id] { order.push_back(id); });
            break;
          }
          default: { // completion burst at the frontier
            const int id = next_id++;
            eq.scheduleCoalesced(frontier,
                                 [&order, id] { order.push_back(id); });
            break;
          }
        }
    }
    const int kick = next_id++;
    eq.schedule(frontier + 1, [&order, &driver, kick] {
        order.push_back(kick);
        driver.burst();
    });

    eq.run();
    executed = eq.executed();
    coalesced = eq.coalesced();
    return order;
}

} // namespace

TEST(EventCoalescing, RandomizedScriptMatchesUncoalescedOrder)
{
    std::uint64_t ex_on = 0, co_on = 0, ex_off = 0, co_off = 0;
    std::vector<int> on = runCoalescingScript(true, ex_on, co_on);
    std::vector<int> off = runCoalescingScript(false, ex_off, co_off);
    ASSERT_EQ(on.size(), off.size());
    EXPECT_EQ(on, off);
    // The transform must have actually engaged...
    EXPECT_GT(co_on, 0u);
    EXPECT_EQ(co_off, 0u);
    // ...and the logical event count is invariant under it.
    EXPECT_EQ(ex_on + co_on, ex_off);
}

// --- Calendar-queue skip-ahead: empty buckets, overflow, wraps ---------

namespace {

/** Pop trace (now, id) over a pathologically sparse schedule. */
std::vector<std::pair<Tick, int>>
runSparseSchedule(bool skip, std::uint64_t &executed)
{
    EventQueue eq;
    eq.setSkipAhead(skip);
    std::vector<std::pair<Tick, int>> trace;
    int next_id = 0;
    auto record = [&](Tick t, int id) {
        eq.schedule(t, [&trace, &eq, id] {
            trace.emplace_back(eq.now(), id);
        });
    };

    // Gaps sized to stress every scan case: within a word, to the next
    // word, across many words, to the last calendar bucket, and past the
    // horizon into the overflow heap. (Bucket width 128 ticks, 4096
    // buckets, 64 buckets per occupancy word.)
    const Tick kWidth = 128;
    Tick t = 5;
    for (Tick gap : {Tick{1}, Tick{130}, kWidth * 63, kWidth * 64,
                     kWidth * 63 * 64, kWidth * 4095, kWidth * 4096,
                     kWidth * 4096 * 7 + 1}) {
        record(t, next_id++);
        t += gap;
    }
    // Same-tick burst right after the longest gap.
    for (int i = 0; i < 5; ++i)
        record(t, next_id++);
    // A chain that keeps hopping nearly a full window ahead, forcing
    // repeated wraps and overflow migrations while the queue is live.
    struct Hopper
    {
        EventQueue &eq;
        std::vector<std::pair<Tick, int>> &trace;
        int left;
        int &next_id;
        void
        hop()
        {
            const int id = next_id++;
            eq.scheduleIn(128 * 4000 + 17, [this, id] {
                trace.emplace_back(eq.now(), id);
                if (--left > 0)
                    hop();
            });
        }
    };
    Hopper hopper{eq, trace, 20, next_id};
    const int kick = next_id++;
    eq.schedule(t + 3, [&hopper, &trace, &eq, kick] {
        trace.emplace_back(eq.now(), kick);
        hopper.hop();
    });

    eq.run();
    executed = eq.executed();
    return trace;
}

} // namespace

TEST(EventQueueSkipAhead, SparseScheduleIdenticalOnAndOff)
{
    std::uint64_t ex_on = 0, ex_off = 0;
    auto on = runSparseSchedule(true, ex_on);
    auto off = runSparseSchedule(false, ex_off);
    EXPECT_EQ(on, off);
    EXPECT_EQ(ex_on, ex_off);
    EXPECT_EQ(on.size(), static_cast<std::size_t>(ex_on));
}

// --- Closed-form RLE runs: cache batch vs. per-access loop -------------

namespace {

CacheConfig
smallCache()
{
    CacheConfig c;
    c.sizeBytes = 4 * kKiB; // 32 sets x 2 ways x 64 B: conflicts are easy
    c.associativity = 2;
    c.lineBytes = 64;
    c.prefetchDepth = 2;
    return c;
}

/** Drive @p n accesses one at a time; return plain-hit prefix length. */
std::uint32_t
expandedRun(Cache &c, Addr addr, std::uint32_t size, std::uint32_t n,
            bool is_write)
{
    for (std::uint32_t k = 0; k < n; ++k) {
        // Peek-free emulation of the batch's stop condition: stop BEFORE
        // the first non-plain access, leaving it unissued.
        Cache probe_twin = c; // tag-only model: copying is cheap & exact
        CacheAccessResult r = probe_twin.access(addr + Addr(k) * size,
                                                is_write);
        if (!r.hit || r.prefetchHit)
            return k;
        c.access(addr + Addr(k) * size, is_write);
    }
    return n;
}

} // namespace

TEST(CacheRun, BatchMatchesPerAccessLoop)
{
    // Two identically warmed caches; one consumes runs closed-form, the
    // other expands every access. Consumed counts, stats, and subsequent
    // replacement behavior must all agree.
    Cache batched(smallCache());
    Cache expanded(smallCache());
    auto warm = [](Cache &c) {
        // Demand-walk lines 0..31 plain-resident; the walk's last demand
        // miss prefetch-inserts the two lines just past it, so the region
        // ends at a prefetch-tagged boundary...
        for (Addr a = 0; a < 2048; a += 64)
            c.access(a, false);
        c.insertPrefetch(2048); // idempotent if the walk beat us to it
        // ...and dirty a line that set-aliases warmed line 31.
        c.access(10176, true);
    };
    warm(batched);
    warm(expanded);

    struct RunCase
    {
        Addr addr;
        std::uint32_t size;
        std::uint32_t n;
        bool write;
    };
    const RunCase cases[] = {
        {0, 8, 32, false},     // wholly inside warmed lines: full consume
        {512, 64, 40, false},  // walks into the prefetch-tagged boundary
        {1920, 64, 4, false},  // hits the prefetched line mid-run
        {0, 64, 16, true},     // write run: dirty bits must propagate
        {10176, 16, 8, false}, // starts on the conflict line, runs off it
        {64, 48, 30, false},   // element size straddling line boundaries
    };
    for (const RunCase &rc : cases) {
        const std::uint32_t got =
            batched.accessRun(rc.addr, rc.size, rc.n, rc.write);
        const std::uint32_t want =
            expandedRun(expanded, rc.addr, rc.size, rc.n, rc.write);
        EXPECT_EQ(got, want) << "run at " << rc.addr;
        EXPECT_EQ(batched.stats().accesses, expanded.stats().accesses);
        EXPECT_EQ(batched.stats().hits, expanded.stats().hits);
    }
    // LRU stamps must have advanced identically: force evictions in set 0
    // and require the same writeback decisions from both caches.
    for (Addr a : {Addr{16384}, Addr{0}, Addr{8192}, Addr{24576}}) {
        CacheAccessResult rb = batched.access(a, false);
        CacheAccessResult re = expanded.access(a, false);
        EXPECT_EQ(rb.hit, re.hit) << a;
        EXPECT_EQ(rb.writebackAddr.has_value(),
                  re.writebackAddr.has_value())
            << a;
    }
    EXPECT_EQ(batched.stats().writebacks, expanded.stats().writebacks);
}

// --- Machine level: every transform toggled off vs. the default --------

namespace {

MemGeometry
tinyGeo()
{
    MemGeometry g;
    g.numStacks = 2;
    g.vaultsPerStack = 8;
    g.banksPerVault = 4;
    g.rowBytes = 256; // small rows: RLE runs cross row boundaries often
    g.vaultBytes = 1 * kMiB;
    return g;
}

struct MachineRun
{
    std::vector<PhaseResult> phases;
    std::uint64_t simEvents;
    std::uint64_t executed;
    std::uint64_t coalesced;
    std::uint64_t elided;
};

MachineRun
runJoinWith(SystemKind kind, const ExecConfig &exec_overrides)
{
    SystemConfig cfg = makeSystem(kind, tinyGeo());
    cfg.exec.coalesceCompletions = exec_overrides.coalesceCompletions;
    cfg.exec.rleRunBatching = exec_overrides.rleRunBatching;
    cfg.exec.queueSkipAhead = exec_overrides.queueSkipAhead;
    cfg.exec.eagerLocalIssue = exec_overrides.eagerLocalIssue;
    MemoryPool pool(cfg.geo);
    WorkloadConfig wl;
    wl.tuples = 4096;
    WorkloadGenerator gen(wl);
    auto pair = gen.makeJoinPair(pool);
    auto exec = runJoin(pool, cfg.exec, pair.r, pair.s);
    Machine m(cfg, pool);
    MachineRun out;
    out.phases = m.run(exec);
    out.simEvents = m.simEvents();
    out.executed = m.eventsExecuted();
    out.coalesced = m.eventsCoalesced();
    out.elided = m.eventsElided();
    return out;
}

void
expectIdenticalTiming(const MachineRun &a, const MachineRun &b,
                      const char *what)
{
    ASSERT_EQ(a.phases.size(), b.phases.size()) << what;
    for (std::size_t i = 0; i < a.phases.size(); ++i) {
        EXPECT_EQ(a.phases[i].time, b.phases[i].time)
            << what << " phase " << a.phases[i].name;
        EXPECT_EQ(a.phases[i].dramBytes, b.phases[i].dramBytes)
            << what << " phase " << a.phases[i].name;
        EXPECT_EQ(a.phases[i].activations, b.phases[i].activations)
            << what << " phase " << a.phases[i].name;
    }
    EXPECT_EQ(a.simEvents, b.simEvents) << what;
}

} // namespace

TEST(MachineTransforms, EachToggleIsOutputNeutral)
{
    // For each system kind: baseline with every transform off, then each
    // transform enabled alone, then all together. All timing results and
    // the logical event count must be bit-equal across the whole grid —
    // the transforms may only move work between executed, coalesced and
    // elided.
    for (SystemKind kind : {SystemKind::kCpu, SystemKind::kNmp,
                            SystemKind::kMondrian}) {
        ExecConfig off;
        off.coalesceCompletions = false;
        off.rleRunBatching = false;
        off.queueSkipAhead = false;
        off.eagerLocalIssue = false;
        const MachineRun base = runJoinWith(kind, off);
        EXPECT_EQ(base.coalesced, 0u);
        EXPECT_EQ(base.elided, 0u);
        EXPECT_EQ(base.simEvents, base.executed);

        const char *names[] = {"coalesce", "rle", "skip", "eager", "all"};
        for (int which = 0; which < 5; ++which) {
            ExecConfig e = off;
            if (which == 0 || which == 4)
                e.coalesceCompletions = true;
            if (which == 1 || which == 4)
                e.rleRunBatching = true;
            if (which == 2 || which == 4)
                e.queueSkipAhead = true;
            if (which == 3 || which == 4)
                e.eagerLocalIssue = true;
            const MachineRun run = runJoinWith(kind, e);
            expectIdenticalTiming(base, run, names[which]);
        }
    }
}

TEST(MachineTransforms, ScanRleNeutralUnderPrefetchWarmup)
{
    // The CPU scan is the prefetch-dominated extreme: nearly every run
    // access hits a prefetched line, i.e. the closed form's fallback
    // boundary. The transform must consume nothing it should not.
    SystemConfig cfg = makeSystem(SystemKind::kCpu, tinyGeo());
    MemoryPool pool(cfg.geo);
    WorkloadConfig wl;
    wl.tuples = 8192;
    Relation rel = WorkloadGenerator(wl).makeUniform(pool, wl.tuples);
    auto runOne = [&](bool rle) {
        SystemConfig c = cfg;
        c.exec.rleRunBatching = rle;
        auto exec = runScan(pool, c.exec, rel, 1);
        Machine m(c, pool);
        auto phases = m.run(exec);
        return std::make_pair(phases[0].time, m.simEvents());
    };
    auto on = runOne(true);
    auto off = runOne(false);
    EXPECT_EQ(on.first, off.first);
    EXPECT_EQ(on.second, off.second);
}
