/** @file Unit tests for the event queue and clock domains. */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/stats.hh"

using namespace mondrian;

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesBreakByInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(1); });
    eq.schedule(5, [&] { order.push_back(2); });
    eq.schedule(5, [&] { order.push_back(3); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EventsScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        if (++fired < 5)
            eq.scheduleIn(10, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.runUntil(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ExecutedCount)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 7u);
}

TEST(EventQueue, ResetClearsState)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.reset();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, [] {}), "past");
}

// --- Calendar-queue specifics: the bucketed front-end must preserve the
// exact (tick, insertion-seq) total order of the plain priority queue. ---

TEST(EventQueue, RandomizedOrderMatchesReference)
{
    // Pseudo-random ticks spanning buckets, bucket boundaries, ties and
    // far-future overflow territory; compare execution order against a
    // stable sort by (tick, insertion index).
    EventQueue eq;
    std::uint64_t lcg = 12345;
    std::vector<Tick> when;
    std::vector<int> order;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        Tick t;
        switch ((lcg >> 33) % 4) {
          case 0: // near now, heavy ties
            t = (lcg >> 40) % 64;
            break;
          case 1: // within the calendar window
            t = (lcg >> 35) % 100000;
            break;
          case 2: // bucket-width multiples (boundary ticks)
            t = ((lcg >> 40) % 128) * 2048;
            break;
          default: // far future: overflow heap
            t = 10'000'000 + (lcg >> 35) % 100'000'000;
            break;
        }
        when.push_back(t);
        eq.schedule(t, [&order, i] { order.push_back(i); });
    }
    std::vector<int> expect(n);
    for (int i = 0; i < n; ++i)
        expect[i] = i;
    std::stable_sort(expect.begin(), expect.end(),
                     [&](int a, int b) { return when[a] < when[b]; });
    eq.run();
    EXPECT_EQ(order, expect);
    EXPECT_EQ(eq.executed(), static_cast<std::uint64_t>(n));
}

TEST(EventQueue, EventsScheduledDuringDrainKeepOrder)
{
    // Callbacks scheduling at the current tick and slightly ahead, into
    // the bucket currently being drained.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] {
        order.push_back(0);
        eq.schedule(10, [&] { order.push_back(2); }); // same tick: after 1
        eq.schedule(11, [&] { order.push_back(3); });
    });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(12, [&] { order.push_back(4); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, FarFutureEventsMigrateFromOverflow)
{
    // Events far beyond the calendar window must still run in order, and
    // scheduling near-now events after a far jump must work.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(1, [&] { order.push_back(0); });
    eq.schedule(100'000'000, [&] {
        order.push_back(2);
        eq.scheduleIn(5, [&] { order.push_back(3); });
    });
    eq.schedule(50'000'000, [&] { order.push_back(1); });
    eq.schedule(200'000'000, [&] { order.push_back(4); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
    EXPECT_EQ(eq.now(), 200'000'000u);
}

TEST(EventQueue, RunUntilAcrossEmptyBucketsAndOverflow)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] { ++fired; });
    eq.schedule(90'000'000, [&] { ++fired; }); // far beyond the window
    eq.runUntil(1000);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_EQ(eq.now(), 1000u);
    // Scheduling behind the peeked-ahead window but >= now must be legal.
    eq.schedule(2000, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, MoveOnlyCallbacks)
{
    // InlineFunction carries move-only captures (std::function could not).
    EventQueue eq;
    auto payload = std::make_unique<int>(7);
    int seen = 0;
    eq.schedule(1, [p = std::move(payload), &seen] { seen = *p; });
    eq.run();
    EXPECT_EQ(seen, 7);
}

TEST(EventQueue, LargeCapturesFallBackToHeap)
{
    // Captures beyond the inline buffer still work (transparent heap
    // fallback).
    EventQueue eq;
    struct Big
    {
        char data[512];
    };
    Big big{};
    big.data[0] = 42;
    char seen = 0;
    eq.schedule(1, [big, &seen] { seen = big.data[0]; });
    eq.run();
    EXPECT_EQ(seen, 42);
}

TEST(EventQueue, ResetAfterMixedScheduling)
{
    EventQueue eq;
    for (int i = 0; i < 100; ++i)
        eq.schedule(static_cast<Tick>(i) * 4096, [] {});
    eq.schedule(500'000'000, [] {});
    eq.reset();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.now(), 0u);
    // Queue is fully usable after reset.
    int fired = 0;
    eq.schedule(3, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(ClockDomain, Conversions)
{
    ClockDomain cd(1000); // 1 GHz
    EXPECT_EQ(cd.cyclesToTicks(5), 5000u);
    EXPECT_EQ(cd.ticksToCycles(5999), 5u);
    EXPECT_EQ(cd.nextEdge(0), 0u);
    EXPECT_EQ(cd.nextEdge(1), 1000u);
    EXPECT_EQ(cd.nextEdge(1000), 1000u);
}

TEST(Stats, CounterAndRegistry)
{
    StatRegistry reg;
    reg.counter("vault0.reads").inc(3);
    reg.counter("vault1.reads").inc(4);
    reg.counter("vault0.writes").inc();
    EXPECT_EQ(reg.value("vault0.reads"), 3u);
    EXPECT_EQ(reg.value("missing"), 0u);
    EXPECT_EQ(reg.sumBySuffix(".reads"), 7u);
    EXPECT_EQ(reg.sumByPrefix("vault0."), 4u);
    EXPECT_EQ(reg.dump().size(), 3u);
    reg.resetAll();
    EXPECT_EQ(reg.sumBySuffix(".reads"), 0u);
}
