/** @file Unit tests for the event queue and clock domains. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/stats.hh"

using namespace mondrian;

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesBreakByInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(1); });
    eq.schedule(5, [&] { order.push_back(2); });
    eq.schedule(5, [&] { order.push_back(3); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EventsScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        if (++fired < 5)
            eq.scheduleIn(10, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.runUntil(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ExecutedCount)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 7u);
}

TEST(EventQueue, ResetClearsState)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.reset();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, [] {}), "past");
}

TEST(ClockDomain, Conversions)
{
    ClockDomain cd(1000); // 1 GHz
    EXPECT_EQ(cd.cyclesToTicks(5), 5000u);
    EXPECT_EQ(cd.ticksToCycles(5999), 5u);
    EXPECT_EQ(cd.nextEdge(0), 0u);
    EXPECT_EQ(cd.nextEdge(1), 1000u);
    EXPECT_EQ(cd.nextEdge(1000), 1000u);
}

TEST(Stats, CounterAndRegistry)
{
    StatRegistry reg;
    reg.counter("vault0.reads").inc(3);
    reg.counter("vault1.reads").inc(4);
    reg.counter("vault0.writes").inc();
    EXPECT_EQ(reg.value("vault0.reads"), 3u);
    EXPECT_EQ(reg.value("missing"), 0u);
    EXPECT_EQ(reg.sumBySuffix(".reads"), 7u);
    EXPECT_EQ(reg.sumByPrefix("vault0."), 4u);
    EXPECT_EQ(reg.dump().size(), 3u);
    reg.resetAll();
    EXPECT_EQ(reg.sumBySuffix(".reads"), 0u);
}
