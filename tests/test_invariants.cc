/**
 * @file
 * Runtime half of the project-invariant suite (the compile-time half is
 * the static_asserts scripts/check_invariants.sh probes): the
 * InlineFunction heap-fallback counter works, and the hot path stays
 * allocation-free — zero fallbacks — across real cpu/nmp/mondrian smoke
 * runs. This is the test-time tripwire for the PR 8 bug class, where a
 * layout shift silently pushed every event closure to the heap and only
 * gprof noticed.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "sim/inline_function.hh"
#include "system/campaign.hh"
#include "system/traffic.hh"

using namespace mondrian;

namespace {

std::uint64_t
fallbackDelta(std::uint64_t before)
{
    return inlineFunctionHeapFallbacks() - before;
}

/** One in-process run of @p kind over @p op at 2^10 tuples. */
void
runSmoke(SystemKind kind, OpKind op)
{
    CampaignGrid grid;
    grid.systems = {kind};
    grid.scenarios = {degenerateScenario(op)};
    grid.log2Tuples = {10};
    grid.seeds = {42};
    CampaignRunner runner(grid);
    const CampaignReport report = runner.run(1);
    ASSERT_EQ(report.runs.size(), 1u);
    ASSERT_FALSE(report.runs[0].failed);
}

} // namespace

TEST(InlineFunctionFallback, CounterTracksOversizedCaptures)
{
    struct Pad
    {
        unsigned char bytes[64];
    };

    const std::uint64_t before = inlineFunctionHeapFallbacks();

    // Small capture: stays inline, counter untouched.
    int x = 7;
    InlineFunction<int(), 16> small([x]() { return x; });
    EXPECT_EQ(small(), 7);
    EXPECT_EQ(fallbackDelta(before), 0u);

    // Capture larger than the inline buffer: falls back, counts once.
    Pad p{};
    p.bytes[0] = 3;
    InlineFunction<int(), 16> big([p]() { return int{p.bytes[0]}; });
    EXPECT_EQ(big(), 3);
    EXPECT_EQ(fallbackDelta(before), 1u);

    // emplace() over an existing target counts its own fallback too.
    big.emplace([p]() { return int{p.bytes[0]} + 1; });
    EXPECT_EQ(big(), 4);
    EXPECT_EQ(fallbackDelta(before), 2u);

    // Moving an already-fallen-back target must not count again.
    InlineFunction<int(), 16> moved(std::move(big));
    EXPECT_EQ(moved(), 4);
    EXPECT_EQ(fallbackDelta(before), 2u);
}

TEST(HotPathAllocationFree, CpuSmokeRunHasZeroFallbacks)
{
    const std::uint64_t before = inlineFunctionHeapFallbacks();
    runSmoke(SystemKind::kCpu, OpKind::kScan);
    runSmoke(SystemKind::kCpu, OpKind::kJoin);
    EXPECT_EQ(fallbackDelta(before), 0u)
        << "a cpu hot-path closure outgrew its inline buffer";
}

TEST(HotPathAllocationFree, NmpSmokeRunHasZeroFallbacks)
{
    const std::uint64_t before = inlineFunctionHeapFallbacks();
    runSmoke(SystemKind::kNmp, OpKind::kScan);
    runSmoke(SystemKind::kNmp, OpKind::kJoin);
    EXPECT_EQ(fallbackDelta(before), 0u)
        << "an nmp hot-path closure outgrew its inline buffer";
}

TEST(HotPathAllocationFree, MondrianSmokeRunHasZeroFallbacks)
{
    const std::uint64_t before = inlineFunctionHeapFallbacks();
    runSmoke(SystemKind::kMondrian, OpKind::kScan);
    runSmoke(SystemKind::kMondrian, OpKind::kSort);
    runSmoke(SystemKind::kMondrian, OpKind::kGroupBy);
    runSmoke(SystemKind::kMondrian, OpKind::kJoin);
    EXPECT_EQ(fallbackDelta(before), 0u)
        << "a mondrian hot-path closure outgrew its inline buffer";
}
