/**
 * @file
 * Machine-level timing tests: phases run to completion, and the headline
 * architectural properties hold (permutability slashes row activations,
 * bandwidth never exceeds the peak, NMP beats the star topology on
 * shuffles).
 */

#include <gtest/gtest.h>

#include "engine/ops.hh"
#include "engine/workload.hh"
#include "system/machine.hh"

using namespace mondrian;

namespace {

MemGeometry
machineGeo()
{
    MemGeometry g;
    g.numStacks = 2;
    g.vaultsPerStack = 8;
    g.banksPerVault = 4;
    g.rowBytes = 256;
    g.vaultBytes = 1 * kMiB;
    return g;
}

SystemConfig
sys(SystemKind kind)
{
    return makeSystem(kind, machineGeo());
}

struct JoinRun
{
    std::vector<PhaseResult> phases;
    EnergyActivity activity;
    EnergyBreakdown energy;
    std::uint64_t matches;
};

JoinRun
runJoinOn(SystemKind kind, std::uint64_t tuples)
{
    SystemConfig cfg = sys(kind);
    MemoryPool pool(cfg.geo);
    WorkloadConfig wl;
    wl.tuples = tuples;
    WorkloadGenerator gen(wl);
    auto pair = gen.makeJoinPair(pool);
    auto exec = runJoin(pool, cfg.exec, pair.r, pair.s);
    Machine m(cfg, pool);
    JoinRun out;
    out.phases = m.run(exec);
    out.activity = m.energyActivity();
    out.energy = m.energy();
    out.matches = exec.joinMatches;
    return out;
}

} // namespace

TEST(Machine, PhasesCompleteWithPositiveTime)
{
    auto run = runJoinOn(SystemKind::kNmp, 4096);
    ASSERT_EQ(run.phases.size(), 3u);
    for (const auto &p : run.phases) {
        EXPECT_GT(p.time, 0u) << p.name;
        EXPECT_GT(p.dramBytes, 0u) << p.name;
        EXPECT_GE(p.coreUtilization, 0.0);
        EXPECT_LE(p.coreUtilization, 1.0);
    }
}

TEST(Machine, PermutabilityReducesActivations)
{
    auto exact = runJoinOn(SystemKind::kNmp, 4096);
    auto perm = runJoinOn(SystemKind::kNmpPerm, 4096);
    // Partition-phase activations must drop by at least 2x with the
    // append engine (the paper's entire §5.3 premise).
    std::uint64_t act_exact =
        exact.phases[0].activations + exact.phases[1].activations;
    std::uint64_t act_perm =
        perm.phases[0].activations + perm.phases[1].activations;
    EXPECT_LT(act_perm * 2, act_exact);
    EXPECT_EQ(exact.matches, perm.matches);
}

TEST(Machine, PermutabilityNotSlower)
{
    auto exact = runJoinOn(SystemKind::kNmp, 4096);
    auto perm = runJoinOn(SystemKind::kNmpPerm, 4096);
    Tick t_exact = exact.phases[0].time + exact.phases[1].time;
    Tick t_perm = perm.phases[0].time + perm.phases[1].time;
    EXPECT_LE(t_perm, t_exact);
}

TEST(Machine, VaultBandwidthBoundedByPeak)
{
    for (SystemKind k : {SystemKind::kCpu, SystemKind::kNmp,
                         SystemKind::kMondrian}) {
        auto run = runJoinOn(k, 4096);
        for (const auto &p : run.phases) {
            EXPECT_LE(p.avgVaultBWGBps, DramTiming{}.peakGBps() + 0.01)
                << systemKindName(k) << " " << p.name;
        }
    }
}

TEST(Machine, NmpShuffleFasterThanCpu)
{
    auto cpu = runJoinOn(SystemKind::kCpu, 4096);
    auto nmp = runJoinOn(SystemKind::kNmp, 4096);
    Tick t_cpu = cpu.phases[0].time + cpu.phases[1].time;
    Tick t_nmp = nmp.phases[0].time + nmp.phases[1].time;
    EXPECT_LT(t_nmp, t_cpu);
}

TEST(Machine, MondrianFastestPartition)
{
    auto nmp = runJoinOn(SystemKind::kNmp, 4096);
    auto mon = runJoinOn(SystemKind::kMondrian, 4096);
    EXPECT_LT(mon.phases[1].time, nmp.phases[1].time);
}

TEST(Machine, EnergyBreakdownConsistent)
{
    auto run = runJoinOn(SystemKind::kMondrian, 4096);
    EXPECT_GT(run.energy.dramDynamic, 0.0);
    EXPECT_GT(run.energy.dramStatic, 0.0);
    EXPECT_GT(run.energy.cores, 0.0);
    EXPECT_GT(run.energy.network, 0.0);
    EXPECT_NEAR(run.energy.total(),
                run.energy.dramDynamic + run.energy.dramStatic +
                    run.energy.cores + run.energy.network,
                1e-12);
}

TEST(Machine, ActivityCountsPopulated)
{
    auto run = runJoinOn(SystemKind::kCpu, 2048);
    EXPECT_GT(run.activity.elapsed, 0u);
    EXPECT_GT(run.activity.rowActivations, 0u);
    EXPECT_GT(run.activity.dramBitsMoved, 0u);
    EXPECT_GT(run.activity.serdesBusyBits, 0u); // star topology: all remote
    EXPECT_GT(run.activity.llcAccesses, 0u);
    EXPECT_TRUE(run.activity.hasLlc);
    EXPECT_GT(run.activity.coreUtilization, 0.0);
    EXPECT_LE(run.activity.coreUtilization, 1.0);
}

TEST(Machine, NmpHasNoLlc)
{
    auto run = runJoinOn(SystemKind::kNmp, 1024);
    EXPECT_FALSE(run.activity.hasLlc);
    EXPECT_EQ(run.activity.llcAccesses, 0u);
}

TEST(Machine, ScanSaturatesMondrianVaults)
{
    SystemConfig cfg = sys(SystemKind::kMondrian);
    MemoryPool pool(cfg.geo);
    WorkloadConfig wl;
    wl.tuples = 65536;
    Relation rel = WorkloadGenerator(wl).makeUniform(pool, wl.tuples);
    auto exec = runScan(pool, cfg.exec, rel, 1);
    Machine m(cfg, pool);
    auto phases = m.run(exec);
    // Streaming scan should push each vault well past half its peak
    // bandwidth (the paper reports 6.7 of 8 GB/s).
    EXPECT_GT(phases[0].avgVaultBWGBps, 4.0);
}
