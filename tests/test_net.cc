/**
 * @file
 * The src/net layer: CRC32, frame encode/decode (partial feeding, CRC
 * corruption, header violations), endpoint parsing, PipeTransport and
 * TcpTransport round-trips over real fds, and the TCP hello-token
 * handshake end to end against a live CampaignCoordinator — with the
 * in-test client acting as a minimal hand-rolled TCP worker, proving
 * the wire protocol independently of the production worker loop.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "common/json_parse.hh"
#include "net/socket.hh"
#include "net/transport.hh"
#include "system/campaign.hh"
#include "system/campaign_spec.hh"
#include "system/coordinator.hh"
#include "system/report.hh"

using namespace mondrian;

namespace {

/** Block until one message arrives; false on EOF/desync. */
bool
awaitMsg(Transport &t, std::string &payload)
{
    for (;;) {
        const int st = t.next(payload);
        if (st > 0)
            return true;
        if (st < 0)
            return false;
        const Transport::Pump p = t.pump();
        if (p == Transport::Pump::kEof || p == Transport::Pump::kError)
            return false;
    }
}

/** 2 systems x 2 ops at 2^8: four cheap jobs with a baseline. */
CampaignGrid
smallGrid()
{
    CampaignGrid grid;
    grid.systems = {SystemKind::kCpu, SystemKind::kMondrian};
    grid.scenarios = {degenerateScenario(OpKind::kScan),
                      degenerateScenario(OpKind::kJoin)};
    grid.log2Tuples = {8};
    grid.seeds = {42};
    return grid;
}

} // namespace

// ------------------------------------------------------------------- CRC32

TEST(Crc32, MatchesTheIeeeCheckValue)
{
    // The canonical CRC-32/ISO-HDLC check value.
    const std::string data = "123456789";
    EXPECT_EQ(crc32(data.data(), data.size()), 0xCBF43926u);
    EXPECT_EQ(crc32("", 0), 0x00000000u);
}

// ------------------------------------------------------------------ frames

TEST(Frame, RoundTripsWithAndWithoutCrc)
{
    for (const bool with_crc : {false, true}) {
        const std::string payload = "{\"type\": \"hello\"}";
        std::string buf = encodeFrame(payload, with_crc);
        std::string out;
        EXPECT_EQ(decodeFrame(buf, out, with_crc), 1);
        EXPECT_EQ(out, payload);
        EXPECT_TRUE(buf.empty());
    }
}

TEST(Frame, PartialFeedingNeedsMoreBytes)
{
    const std::string payload(1000, 'x');
    const std::string wire = encodeFrame(payload, true);
    std::string buf, out;
    // Feed one byte at a time: decode must keep answering 0 until the
    // final trailer byte lands (short reads are the TCP common case).
    for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
        buf += wire[i];
        ASSERT_EQ(decodeFrame(buf, out, true), 0) << "at byte " << i;
    }
    buf += wire.back();
    EXPECT_EQ(decodeFrame(buf, out, true), 1);
    EXPECT_EQ(out, payload);
}

TEST(Frame, CrcMismatchIsDesync)
{
    const std::string payload = "{\"type\": \"result\", \"value\": 42}";
    std::string wire = encodeFrame(payload, true);
    // Flip one payload bit: the header CRC no longer matches.
    wire[wire.find('{') + 10] ^= 0x01;
    std::string out;
    EXPECT_EQ(decodeFrame(wire, out, true), -1);
}

TEST(Frame, HeaderViolationsAreDesync)
{
    std::string out;
    // Garbage length.
    std::string buf = "xyz deadbeef\n{}\n";
    EXPECT_EQ(decodeFrame(buf, out, true), -1);
    // Missing CRC field on a CRC channel.
    buf = "2\n{}\n";
    EXPECT_EQ(decodeFrame(buf, out, true), -1);
    // Bad CRC width.
    buf = "2 abc\n{}\n";
    EXPECT_EQ(decodeFrame(buf, out, true), -1);
    // Missing trailing newline after the payload.
    buf = "2 " + std::string(8, '0') + "\n{}X";
    EXPECT_EQ(decodeFrame(buf, out, true), -1);
    // Nonsense length: a desync, not an allocation attempt.
    buf = "99999999999999\n";
    EXPECT_EQ(decodeFrame(buf, out, false), -1);
    // A header line that never terminates.
    buf = std::string(64, '1');
    EXPECT_EQ(decodeFrame(buf, out, false), -1);
}

// --------------------------------------------------------------- endpoints

TEST(Endpoint, ParsesHostColonPort)
{
    Endpoint ep;
    std::string error;
    ASSERT_TRUE(parseEndpoint("127.0.0.1:8080", ep, error)) << error;
    EXPECT_EQ(ep.host, "127.0.0.1");
    EXPECT_EQ(ep.port, 8080);
    EXPECT_EQ(ep.name(), "127.0.0.1:8080");
    ASSERT_TRUE(parseEndpoint("localhost:0", ep, error)) << error;
    EXPECT_EQ(ep.port, 0);
}

TEST(Endpoint, RejectsMalformedSpecs)
{
    Endpoint ep;
    std::string error;
    EXPECT_FALSE(parseEndpoint("no-port", ep, error));
    EXPECT_FALSE(parseEndpoint(":8080", ep, error));
    EXPECT_FALSE(parseEndpoint("host:", ep, error));
    EXPECT_FALSE(parseEndpoint("host:notaport", ep, error));
    EXPECT_FALSE(parseEndpoint("host:70000", ep, error));
}

// ----------------------------------------------------------- PipeTransport

TEST(PipeTransport, RoundTripsBothRoles)
{
    // Two unidirectional pipes, exactly the coordinator/worker shape.
    int cmd[2], reply[2];
    ASSERT_EQ(::pipe(cmd), 0);
    ASSERT_EQ(::pipe(reply), 0);
    PipeTransport coord(Transport::Role::kCoordinator, reply[0], cmd[1],
                        true);
    PipeTransport worker(Transport::Role::kWorker, cmd[0], reply[1], true);

    ASSERT_TRUE(coord.send("{\"type\": \"job\", \"index\": 3}"));
    std::string msg;
    ASSERT_TRUE(awaitMsg(worker, msg));
    EXPECT_EQ(msg, "{\"type\": \"job\", \"index\": 3}");

    ASSERT_TRUE(worker.send("{\"type\": \"heartbeat\"}"));
    ASSERT_TRUE(awaitMsg(coord, msg));
    EXPECT_EQ(msg, "{\"type\": \"heartbeat\"}");

    // Half-close: the worker sees EOF, its own send side still works.
    coord.shutdownSend();
    EXPECT_EQ(worker.pump(), Transport::Pump::kEof);
}

// ------------------------------------------------------------ TcpTransport

TEST(TcpTransport, LoopbackFramesSurviveFragmentation)
{
    std::string error;
    Endpoint ep;
    ASSERT_TRUE(parseEndpoint("127.0.0.1:0", ep, error));
    Socket listener = Socket::listen(ep, error);
    ASSERT_TRUE(listener.valid()) << error;
    ep.port = listener.localPort();
    ASSERT_NE(ep.port, 0);

    Socket client = Socket::connect(ep, error);
    ASSERT_TRUE(client.valid()) << error;
    Socket served = listener.accept(error);
    ASSERT_TRUE(served.valid()) << error;

    TcpTransport a(std::move(client));
    TcpTransport b(std::move(served));

    // A payload far bigger than one MTU: must reassemble across reads.
    const std::string big(256 * 1024, 'm');
    ASSERT_TRUE(a.send(big));
    std::string msg;
    ASSERT_TRUE(awaitMsg(b, msg));
    EXPECT_EQ(msg, big);

    // And the reverse direction.
    ASSERT_TRUE(b.send("{\"type\": \"ok\"}"));
    ASSERT_TRUE(awaitMsg(a, msg));
    EXPECT_EQ(msg, "{\"type\": \"ok\"}");
}

TEST(TcpTransport, BytewiseWritesReassembleAndCorruptionIsFatal)
{
    std::string error;
    Endpoint ep;
    ASSERT_TRUE(parseEndpoint("127.0.0.1:0", ep, error));
    Socket listener = Socket::listen(ep, error);
    ASSERT_TRUE(listener.valid()) << error;
    ep.port = listener.localPort();

    Socket client = Socket::connect(ep, error);
    ASSERT_TRUE(client.valid()) << error;
    Socket served = listener.accept(error);
    ASSERT_TRUE(served.valid()) << error;
    TcpTransport receiver(std::move(served));

    // Trickle a valid frame one byte at a time (worst-case short reads).
    const std::string wire = encodeFrame("{\"type\": \"hello\"}", true);
    for (const char c : wire)
        ASSERT_TRUE(client.writeAll(&c, 1));
    std::string msg;
    ASSERT_TRUE(awaitMsg(receiver, msg));
    EXPECT_EQ(msg, "{\"type\": \"hello\"}");

    // Now a frame whose payload was corrupted in flight: the transport
    // must report desync (-1 from next()), the coordinator's channel-
    // drop signal — not deliver garbage upward.
    std::string bad = encodeFrame("{\"type\": \"result\"}", true);
    bad[bad.find('{') + 9] ^= 0x20;
    ASSERT_TRUE(client.writeAll(bad.data(), bad.size()));
    for (;;) {
        const int st = receiver.next(msg);
        if (st != 0) {
            EXPECT_EQ(st, -1);
            break;
        }
        ASSERT_EQ(receiver.pump(), Transport::Pump::kData);
    }
}

// ------------------------------------- end-to-end TCP handshake + campaign

TEST(TcpHandshake, TokenRejectionThenHandRolledWorkerCompletesCampaign)
{
    const CampaignGrid grid = smallGrid();
    CampaignRunner reference(grid);
    const std::string expected = campaignReportJson(reference.run(1));

    CoordinatorConfig config;
    config.workers = 0; // remote-only
    config.listenEndpoint = "127.0.0.1:0";
    config.helloToken = "s3cret";
    config.retryBackoffSec = 0.01;
    CampaignCoordinator coordinator(grid, config);
    std::string error;
    ASSERT_TRUE(coordinator.listen(error)) << error;
    const std::uint16_t port = coordinator.listenPort();
    ASSERT_NE(port, 0);

    CampaignReport report;
    std::thread coord_thread([&] { report = coordinator.run(); });

    Endpoint ep;
    ASSERT_TRUE(parseEndpoint("127.0.0.1:" + std::to_string(port), ep,
                              error));

    // 1) A client with the wrong token: explicit reject, then EOF.
    {
        Socket s = Socket::connect(ep, error);
        ASSERT_TRUE(s.valid()) << error;
        TcpTransport t(std::move(s));
        ASSERT_TRUE(t.send("{\"type\": \"hello\", \"pid\": 1, "
                           "\"token\": \"wrong\"}"));
        std::string msg;
        ASSERT_TRUE(awaitMsg(t, msg));
        JsonValue reply;
        ASSERT_TRUE(parseJson(msg, reply, error)) << error;
        ASSERT_TRUE(reply.find("type"));
        EXPECT_EQ(reply.find("type")->asString(), "reject");
        EXPECT_FALSE(awaitMsg(t, msg)); // coordinator closed the channel
    }

    // 2) A hand-rolled worker with the right token: receives the spec
    // over the wire, expands it, serves every job with exact-double
    // results — the protocol proven without the production worker loop.
    {
        Socket s = Socket::connect(ep, error);
        ASSERT_TRUE(s.valid()) << error;
        TcpTransport t(std::move(s));
        ASSERT_TRUE(t.send("{\"type\": \"hello\", \"pid\": 2, "
                           "\"token\": \"s3cret\"}"));
        std::string msg;
        ASSERT_TRUE(awaitMsg(t, msg));
        JsonValue spec_msg;
        ASSERT_TRUE(parseJson(msg, spec_msg, error)) << error;
        ASSERT_TRUE(spec_msg.find("type"));
        ASSERT_EQ(spec_msg.find("type")->asString(), "spec");
        ASSERT_TRUE(spec_msg.find("spec"));

        CampaignGrid wire_grid;
        ASSERT_TRUE(parseCampaignSpec(spec_msg.find("spec")->asString(),
                                      wire_grid, error)) << error;
        const std::vector<CampaignJob> jobs = expandGrid(wire_grid);
        ASSERT_EQ(jobs.size(), 4u);
        ASSERT_TRUE(t.send("{\"type\": \"ready\", \"jobs\": " +
                           std::to_string(jobs.size()) + "}"));

        for (;;) {
            ASSERT_TRUE(awaitMsg(t, msg));
            JsonValue job_msg;
            ASSERT_TRUE(parseJson(msg, job_msg, error)) << error;
            const JsonValue *type = job_msg.find("type");
            ASSERT_TRUE(type);
            if (type->asString() == "exit")
                break;
            ASSERT_EQ(type->asString(), "job");
            const std::size_t index = static_cast<std::size_t>(
                job_msg.find("index")->asU64());
            const RunResult result = executeCampaignJob(jobs[index]);
            JsonWriter w;
            w.setPreciseDoubles(true);
            w.beginObject();
            w.member("type", "result");
            w.member("index", std::uint64_t{index});
            w.key("result");
            writeRunResult(w, result);
            w.endObject();
            ASSERT_TRUE(t.send(JsonWriter::compact(w.str())));
        }
    }

    coord_thread.join();
    EXPECT_TRUE(report.failedRuns.empty());
    EXPECT_EQ(campaignReportJson(report), expected);
}
