/** @file Unit tests for mesh, SerDes links, and the Network facade. */

#include <gtest/gtest.h>

#include <set>

#include "noc/network.hh"
#include "system/config.hh"

using namespace mondrian;

TEST(Mesh, HopsManhattan)
{
    MeshConfig cfg; // 4x4
    Mesh m(cfg);
    EXPECT_EQ(m.hops(0, 0), 0u);
    EXPECT_EQ(m.hops(0, 3), 3u);
    EXPECT_EQ(m.hops(0, 15), 6u);
    EXPECT_EQ(m.hops(5, 6), 1u);
    EXPECT_EQ(m.hops(12, 3), 6u);
}

TEST(Mesh, LocalDeliveryFree)
{
    Mesh m(MeshConfig{});
    EXPECT_EQ(m.route(4, 4, 1000, 123), 123u);
}

TEST(Mesh, LatencyScalesWithHops)
{
    MeshConfig cfg;
    Mesh m(cfg);
    Tick ser = 32 * cfg.psPerByte();
    Tick one = m.route(0, 1, 32, 0);
    EXPECT_EQ(one, cfg.hopLatency + 2 * ser);
    Mesh m2(cfg);
    Tick six = m2.route(0, 15, 32, 0);
    EXPECT_EQ(six, 6 * cfg.hopLatency + 2 * ser);
}

TEST(Mesh, InjectionSerializes)
{
    MeshConfig cfg;
    Mesh m(cfg);
    Tick ser = 64 * cfg.psPerByte();
    Tick a = m.route(0, 5, 64, 0);
    Tick b = m.route(0, 5, 64, 0); // same instant, same ports
    // The second message pipelines behind the first: one serialization
    // window later (inject and eject stages overlap across messages).
    EXPECT_EQ(b - a, ser);
}

TEST(Mesh, DisjointPathsDontContend)
{
    MeshConfig cfg;
    Mesh m(cfg);
    Tick a = m.route(0, 1, 64, 0);
    Tick b = m.route(14, 15, 64, 0);
    EXPECT_EQ(a - 0, b - 0); // identical, no shared ports
}

TEST(Mesh, StatsAccumulate)
{
    Mesh m(MeshConfig{});
    m.route(0, 3, 100, 0);
    EXPECT_EQ(m.stats().packets, 1u);
    EXPECT_EQ(m.stats().bytes, 100u);
    EXPECT_EQ(m.stats().bitHops, 100u * 8 * 3);
}

TEST(SerDes, ThroughputAndLatency)
{
    SerDesLink link;
    Tick t1 = link.transfer(160, 0); // 160 B @ 20 GB/s = 8 ns + 8 ns latency
    EXPECT_EQ(t1, 8000u + 8000u);
    Tick t2 = link.transfer(160, 0); // queues behind the first
    EXPECT_EQ(t2, 16000u + 8000u);
    EXPECT_EQ(link.busyBits(), 2u * 160 * 8);
}

namespace {

MemGeometry
netGeo()
{
    MemGeometry g = defaultGeometry();
    return g;
}

} // namespace

TEST(Network, LocalAccessSkipsNetwork)
{
    Network net(netGeo(), Topology::kFullyConnectedNmp);
    EXPECT_EQ(net.delay(5, 5, 64, 1000), 1000u);
}

TEST(Network, IntraStackOnlyMesh)
{
    Network net(netGeo(), Topology::kFullyConnectedNmp);
    Tick t = net.delay(0, 5, 16, 0);
    EXPECT_GT(t, 0u);
    EXPECT_EQ(net.stats().serdesBusyBits, 0u);
    EXPECT_GT(net.stats().meshBitHops, 0u);
}

TEST(Network, CrossStackUsesOneSerDesHop)
{
    Network net(netGeo(), Topology::kFullyConnectedNmp);
    net.delay(0, 20, 16, 0); // stack 0 -> stack 1
    EXPECT_EQ(net.stats().serdesBusyBits, (16u + 16u) * 8);
}

TEST(Network, StarBouncesThroughCpu)
{
    Network star(netGeo(), Topology::kStarCpu);
    star.delay(0, 20, 16, 0);
    // Two serdes traversals: stack->CPU, CPU->stack.
    EXPECT_EQ(star.stats().serdesBusyBits, 2u * (16 + 16) * 8);
}

TEST(Network, StarSlowerThanDirect)
{
    Network star(netGeo(), Topology::kStarCpu);
    Network nmp(netGeo(), Topology::kFullyConnectedNmp);
    EXPECT_GT(star.baseLatency(0, 20, 64), nmp.baseLatency(0, 20, 64));
}

TEST(Network, CpuPathsWork)
{
    Network star(netGeo(), Topology::kStarCpu);
    Tick down = star.delay(Network::kCpuNode, 7, 64, 0);
    Tick up = star.delay(7, Network::kCpuNode, 64, down);
    EXPECT_GT(up, down);
}

TEST(Network, LinkCounts)
{
    Network star(netGeo(), Topology::kStarCpu);
    EXPECT_EQ(star.serdesLinkCount(), 8u); // 4 stacks x 2 directions
    Network nmp(netGeo(), Topology::kFullyConnectedNmp);
    EXPECT_EQ(nmp.serdesLinkCount(), 8u + 12u);
}

TEST(Network, CornerPortsSpreadAcrossStacks)
{
    Network nmp(netGeo(), Topology::kFullyConnectedNmp);
    std::set<unsigned> ports;
    for (unsigned peer = 0; peer < 4; ++peer)
        ports.insert(nmp.portRouter(0, peer));
    EXPECT_EQ(ports.size(), 4u);
}

TEST(Network, BaseLatencyIsLowerBound)
{
    Network nmp(netGeo(), Topology::kFullyConnectedNmp);
    Tick base = nmp.baseLatency(0, 20, 16);
    Tick actual = nmp.delay(0, 20, 16, 0);
    EXPECT_GE(actual + 1, base); // no contention yet: equal up to rounding
}
