/**
 * @file
 * Functional correctness of the four operators across every execution
 * style. Each style must produce the same answer as a scalar reference
 * implementation -- the timing models may differ, the data may not.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <unordered_map>

#include "engine/ops.hh"
#include "engine/workload.hh"
#include "system/config.hh"

using namespace mondrian;

namespace {

MemGeometry
opGeo()
{
    MemGeometry g;
    g.numStacks = 2;
    g.vaultsPerStack = 8;
    g.banksPerVault = 4;
    g.rowBytes = 256;
    g.vaultBytes = 1 * kMiB;
    return g;
}

/** The five evaluated execution styles. */
enum class Style
{
    kCpu,
    kNmpRand,
    kNmpSeq,
    kNmpPerm,
    kMondrian
};

ExecConfig
styleConfig(Style s, unsigned vaults)
{
    switch (s) {
      case Style::kCpu: {
        ExecConfig c = cpuExec(vaults);
        c.numUnits = 4;
        c.cpuPartitionBits = 5; // small fanout keeps tests quick
        return c;
      }
      case Style::kNmpRand:
        return nmpExec(vaults, false, false);
      case Style::kNmpSeq:
        return nmpExec(vaults, false, true);
      case Style::kNmpPerm:
        return nmpExec(vaults, true, false);
      case Style::kMondrian:
        return mondrianExec(vaults, true);
    }
    return nmpExec(vaults, false, false);
}

const char *
styleName(Style s)
{
    switch (s) {
      case Style::kCpu:
        return "cpu";
      case Style::kNmpRand:
        return "nmp-rand";
      case Style::kNmpSeq:
        return "nmp-seq";
      case Style::kNmpPerm:
        return "nmp-perm";
      case Style::kMondrian:
        return "mondrian";
    }
    return "?";
}

struct StyleSize
{
    Style style;
    std::uint64_t tuples;
};

void
PrintTo(const StyleSize &p, std::ostream *os)
{
    *os << styleName(p.style) << "_" << p.tuples;
}

class OperatorTest : public ::testing::TestWithParam<StyleSize>
{
  protected:
    void
    SetUp() override
    {
        pool = std::make_unique<MemoryPool>(opGeo());
        cfg = styleConfig(GetParam().style, opGeo().totalVaults());
        wcfg.tuples = GetParam().tuples;
        wcfg.seed = 1234;
    }

    std::unique_ptr<MemoryPool> pool;
    ExecConfig cfg;
    WorkloadConfig wcfg;
};

const auto kAllStyles = ::testing::Values(
    StyleSize{Style::kCpu, 512}, StyleSize{Style::kCpu, 5000},
    StyleSize{Style::kNmpRand, 512}, StyleSize{Style::kNmpRand, 5000},
    StyleSize{Style::kNmpSeq, 512}, StyleSize{Style::kNmpSeq, 5000},
    StyleSize{Style::kNmpPerm, 512}, StyleSize{Style::kNmpPerm, 5000},
    StyleSize{Style::kMondrian, 512}, StyleSize{Style::kMondrian, 5000});

} // namespace

// --- Scan -----------------------------------------------------------------

TEST_P(OperatorTest, ScanCountsMatches)
{
    WorkloadGenerator gen(wcfg);
    Relation rel = gen.makeUniform(*pool, wcfg.tuples);
    auto all = rel.gatherAll(*pool);
    std::uint64_t probe = all[all.size() / 2].key;
    std::uint64_t expect = 0;
    for (const Tuple &t : all)
        expect += t.key == probe ? 1 : 0;

    auto exec = runScan(*pool, cfg, rel, probe);
    EXPECT_EQ(exec.scanMatches, expect);
    EXPECT_GE(exec.scanMatches, 1u);
    ASSERT_EQ(exec.phases.size(), 1u); // Table 2: scan has no partitioning
    EXPECT_EQ(exec.phases[0].kind, PhaseKind::kProbe);
}

// --- Sort -----------------------------------------------------------------

TEST_P(OperatorTest, SortProducesGlobalOrder)
{
    WorkloadGenerator gen(wcfg);
    Relation rel = gen.makeUniform(*pool, wcfg.tuples);
    auto before = rel.gatherAll(*pool);

    auto exec = runSort(*pool, cfg, rel);
    auto after = exec.output.gatherAll(*pool);
    ASSERT_EQ(after.size(), before.size());

    EXPECT_TRUE(std::is_sorted(after.begin(), after.end(),
                               [](const Tuple &a, const Tuple &b) {
                                   return a.key < b.key;
                               }));
    // Same multiset of tuples.
    auto key = [](const Tuple &t) {
        return std::make_pair(t.key, t.payload);
    };
    std::multiset<std::pair<std::uint64_t, std::uint64_t>> ma, mb;
    for (auto &t : before)
        ma.insert(key(t));
    for (auto &t : after)
        mb.insert(key(t));
    EXPECT_EQ(ma, mb);
}

// --- Group-by ---------------------------------------------------------------

TEST_P(OperatorTest, GroupByMatchesReference)
{
    WorkloadGenerator gen(wcfg);
    Relation rel = gen.makeGroupBy(*pool, wcfg.tuples);
    auto all = rel.gatherAll(*pool);

    std::map<std::uint64_t, GroupRecord> ref;
    for (const Tuple &t : all) {
        GroupRecord &g = ref[t.key];
        g.key = t.key;
        g.count++;
        g.sum += t.payload;
        g.min = std::min(g.min, t.payload);
        g.max = std::max(g.max, t.payload);
        g.sumsq += t.payload * t.payload;
    }
    std::uint64_t ref_checksum = 0;
    for (auto &[k, g] : ref)
        ref_checksum += g.digest();

    auto exec = runGroupBy(*pool, cfg, rel);
    EXPECT_EQ(exec.groupCount, ref.size());
    EXPECT_EQ(exec.aggChecksum, ref_checksum);
    EXPECT_FALSE(exec.outputRegions.empty());
}

TEST_P(OperatorTest, GroupByRecordsReadableFromMemory)
{
    WorkloadGenerator gen(wcfg);
    Relation rel = gen.makeGroupBy(*pool, wcfg.tuples);
    auto exec = runGroupBy(*pool, cfg, rel);

    std::uint64_t checksum = 0, records = 0;
    for (auto &[base, bytes] : exec.outputRegions) {
        for (std::uint64_t off = 0; off < bytes;
             off += sizeof(GroupRecord)) {
            auto g = pool->store().readValue<GroupRecord>(base + off);
            checksum += g.digest();
            ++records;
            EXPECT_GE(g.count, 1u);
            EXPECT_LE(g.min, g.max);
            EXPECT_GE(g.sum, g.min * g.count / 2); // sanity, not equality
        }
    }
    EXPECT_EQ(records, exec.groupCount);
    EXPECT_EQ(checksum, exec.aggChecksum);
}

// --- Join -------------------------------------------------------------------

TEST_P(OperatorTest, JoinMatchesEveryForeignKey)
{
    WorkloadGenerator gen(wcfg);
    auto pair = gen.makeJoinPair(*pool);

    auto exec = runJoin(*pool, cfg, pair.r, pair.s);
    // FK relationship: every S tuple joins exactly once (§6).
    EXPECT_EQ(exec.joinMatches, wcfg.tuples);
    ASSERT_EQ(exec.phases.size(), 3u); // partition-R, partition-S, probe
    EXPECT_EQ(exec.phases[0].kind, PhaseKind::kPartition);
    EXPECT_EQ(exec.phases[1].kind, PhaseKind::kPartition);
    EXPECT_EQ(exec.phases[2].kind, PhaseKind::kProbe);
}

TEST_P(OperatorTest, JoinOutputTuplesCorrect)
{
    WorkloadGenerator gen(wcfg);
    auto pair = gen.makeJoinPair(*pool);
    std::unordered_map<std::uint64_t, std::uint64_t> r_payload;
    for (const Tuple &t : pair.r.gatherAll(*pool))
        r_payload[t.key] = t.payload;
    // Reference output multiset.
    std::multiset<std::pair<std::uint64_t, std::uint64_t>> ref;
    for (const Tuple &t : pair.s.gatherAll(*pool))
        ref.insert({t.key, t.payload + r_payload.at(t.key)});

    auto exec = runJoin(*pool, cfg, pair.r, pair.s);
    std::multiset<std::pair<std::uint64_t, std::uint64_t>> got;
    for (auto &[base, bytes] : exec.outputRegions) {
        for (std::uint64_t off = 0; off < bytes; off += kTupleBytes) {
            auto t = pool->store().readValue<Tuple>(base + off);
            got.insert({t.key, t.payload});
        }
    }
    EXPECT_EQ(got, ref);
}

INSTANTIATE_TEST_SUITE_P(AllStyles, OperatorTest, kAllStyles,
                         [](const auto &info) {
                             std::string name = styleName(info.param.style);
                             for (auto &ch : name)
                                 if (ch == '-')
                                     ch = '_';
                             return name + "_" +
                                    std::to_string(info.param.tuples);
                         });

// --- Cross-style agreement ---------------------------------------------------

TEST(OperatorAgreement, AllStylesSameGroupByChecksum)
{
    WorkloadConfig wcfg;
    wcfg.tuples = 3000;
    std::uint64_t ref = 0;
    bool first = true;
    for (Style s : {Style::kCpu, Style::kNmpRand, Style::kNmpSeq,
                    Style::kNmpPerm, Style::kMondrian}) {
        MemoryPool pool(opGeo());
        Relation rel = WorkloadGenerator(wcfg).makeGroupBy(pool, 3000);
        auto exec = runGroupBy(pool, styleConfig(s, 16), rel);
        if (first) {
            ref = exec.aggChecksum;
            first = false;
        } else {
            EXPECT_EQ(exec.aggChecksum, ref) << styleName(s);
        }
    }
}

TEST(OperatorAgreement, AllStylesSameSortedOutput)
{
    WorkloadConfig wcfg;
    wcfg.tuples = 2500;
    std::vector<std::uint64_t> ref;
    bool first = true;
    for (Style s : {Style::kCpu, Style::kNmpSeq, Style::kMondrian}) {
        MemoryPool pool(opGeo());
        Relation rel = WorkloadGenerator(wcfg).makeUniform(pool, 2500);
        auto exec = runSort(pool, styleConfig(s, 16), rel);
        std::vector<std::uint64_t> keys;
        for (const Tuple &t : exec.output.gatherAll(pool))
            keys.push_back(t.key);
        if (first) {
            ref = keys;
            first = false;
        } else {
            EXPECT_EQ(keys, ref) << styleName(s);
        }
    }
}
