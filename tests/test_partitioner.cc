/** @file Tests for partition functions and the shuffle machinery. */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "engine/partitioner.hh"
#include "engine/workload.hh"
#include "system/config.hh"

using namespace mondrian;

namespace {

MemGeometry
shuffleGeo()
{
    MemGeometry g;
    g.numStacks = 1;
    g.vaultsPerStack = 8;
    g.banksPerVault = 4;
    g.rowBytes = 256;
    g.vaultBytes = 512 * kKiB;
    return g;
}

std::multiset<std::pair<std::uint64_t, std::uint64_t>>
asMultiset(const std::vector<Tuple> &tuples)
{
    std::multiset<std::pair<std::uint64_t, std::uint64_t>> m;
    for (const Tuple &t : tuples)
        m.insert({t.key, t.payload});
    return m;
}

} // namespace

TEST(PartitionFn, LowBitsRadix)
{
    PartitionFn fn = PartitionFn::lowBits(8);
    EXPECT_EQ(fn(0), 0u);
    EXPECT_EQ(fn(7), 7u);
    EXPECT_EQ(fn(8), 0u);
    EXPECT_EQ(fn(0xffffffff), 7u);
}

TEST(PartitionFn, RangePreservesOrder)
{
    PartitionFn fn = PartitionFn::range(4, 1000);
    EXPECT_EQ(fn(0), 0u);
    EXPECT_EQ(fn(249), 0u);
    EXPECT_EQ(fn(250), 1u);
    EXPECT_EQ(fn(999), 3u);
    // Monotone: p(k1) <= p(k2) for k1 <= k2.
    unsigned prev = 0;
    for (std::uint64_t k = 0; k < 1000; k += 7) {
        unsigned p = fn(k);
        EXPECT_GE(p, prev);
        prev = p;
    }
}

class ShuffleTest : public ::testing::TestWithParam<bool>
{
  protected:
    void
    SetUp() override
    {
        pool = std::make_unique<MemoryPool>(shuffleGeo());
        WorkloadConfig wcfg;
        wcfg.tuples = 2048;
        WorkloadGenerator gen(wcfg);
        input = gen.makeUniform(*pool, 2048);

        cfg = nmpExec(8, /*permutable=*/GetParam(), false);
    }

    std::unique_ptr<MemoryPool> pool;
    Relation input;
    ExecConfig cfg;
};

TEST_P(ShuffleTest, OutputIsPermutationOfInput)
{
    Partitioner part(*pool, cfg);
    std::vector<TraceRecorder> recs(8);
    std::vector<std::pair<unsigned, PermutableRegion>> arming;
    PartitionFn fn = PartitionFn::lowBits(8);
    Relation out = part.shuffleNmp(input, fn, recs, &arming);
    EXPECT_EQ(asMultiset(out.gatherAll(*pool)),
              asMultiset(input.gatherAll(*pool)));
}

TEST_P(ShuffleTest, TuplesLandInCorrectPartition)
{
    Partitioner part(*pool, cfg);
    std::vector<TraceRecorder> recs(8);
    std::vector<std::pair<unsigned, PermutableRegion>> arming;
    PartitionFn fn = PartitionFn::lowBits(8);
    Relation out = part.shuffleNmp(input, fn, recs, &arming);
    for (unsigned v = 0; v < 8; ++v)
        for (const Tuple &t : out.gather(*pool, v))
            EXPECT_EQ(fn(t.key), v);
}

TEST_P(ShuffleTest, ArmingMatchesMode)
{
    Partitioner part(*pool, cfg);
    std::vector<TraceRecorder> recs(8);
    std::vector<std::pair<unsigned, PermutableRegion>> arming;
    PartitionFn fn = PartitionFn::lowBits(8);
    part.shuffleNmp(input, fn, recs, &arming);
    if (GetParam()) {
        EXPECT_EQ(arming.size(), 8u);
        for (auto &[v, region] : arming)
            EXPECT_EQ(region.objectBytes, kTupleBytes);
    } else {
        EXPECT_TRUE(arming.empty());
    }
}

TEST_P(ShuffleTest, TraceStoreKindsMatchMode)
{
    Partitioner part(*pool, cfg);
    std::vector<TraceRecorder> recs(8);
    std::vector<std::pair<unsigned, PermutableRegion>> arming;
    PartitionFn fn = PartitionFn::lowBits(8);
    part.shuffleNmp(input, fn, recs, &arming);
    for (auto &rec : recs) {
        auto s = rec.trace().summarize();
        if (GetParam())
            EXPECT_EQ(s.permutableStores, input.totalTuples() / 8);
        else
            EXPECT_EQ(s.permutableStores, 0u);
        EXPECT_EQ(s.fences, 2u);
    }
}

INSTANTIATE_TEST_SUITE_P(Modes, ShuffleTest, ::testing::Bool());

TEST(ShuffleModes, SamePerPartitionContent)
{
    // Permutable and exact shuffles must agree on each partition's
    // multiset of tuples -- permutability only relaxes ordering (§4.1.2).
    MemoryPool pool_a(shuffleGeo()), pool_b(shuffleGeo());
    WorkloadConfig wcfg;
    wcfg.tuples = 2048;
    Relation in_a = WorkloadGenerator(wcfg).makeUniform(pool_a, 2048);
    Relation in_b = WorkloadGenerator(wcfg).makeUniform(pool_b, 2048);

    ExecConfig exact = nmpExec(8, false, false);
    ExecConfig perm = nmpExec(8, true, false);
    Partitioner pa(pool_a, exact), pb(pool_b, perm);
    std::vector<TraceRecorder> ra(8), rb(8);
    std::vector<std::pair<unsigned, PermutableRegion>> arming;
    PartitionFn fn = PartitionFn::lowBits(8);
    Relation out_a = pa.shuffleNmp(in_a, fn, ra, nullptr);
    Relation out_b = pb.shuffleNmp(in_b, fn, rb, &arming);

    for (unsigned v = 0; v < 8; ++v) {
        EXPECT_EQ(asMultiset(out_a.gather(pool_a, v)),
                  asMultiset(out_b.gather(pool_b, v)))
            << "partition " << v;
    }
}

class SkewedShuffleTest : public ::testing::TestWithParam<bool>
{};

TEST_P(SkewedShuffleTest, ZipfSkewDoesNotOverflow)
{
    // Regression: heavily skewed keys used to die with "shuffle
    // destination overflows" because destinations were sized by the flat
    // shuffleCapacityFactor. They are now sized per destination from the
    // exchanged histogram, so any theta works.
    MemoryPool pool(shuffleGeo());
    WorkloadConfig wcfg;
    wcfg.tuples = 4096;
    wcfg.zipfTheta = 0.99; // hottest destination far beyond 1.7x average
    WorkloadGenerator gen(wcfg);
    Relation in = gen.makeGroupBy(pool, 4096);

    ExecConfig cfg = nmpExec(8, /*permutable=*/GetParam(), false);
    Partitioner part(pool, cfg);
    std::vector<TraceRecorder> recs(8);
    std::vector<std::pair<unsigned, PermutableRegion>> arming;
    PartitionFn fn = PartitionFn::lowBits(8);
    Relation out = part.shuffleNmp(in, fn, recs, &arming);

    // No overflow, nothing lost, and the skew really was present.
    EXPECT_EQ(asMultiset(out.gatherAll(pool)), asMultiset(in.gatherAll(pool)));
    std::uint64_t max_part = 0;
    for (unsigned v = 0; v < 8; ++v) {
        EXPECT_LE(out.partition(v).count, out.partition(v).capacity);
        max_part = std::max(max_part, out.partition(v).count);
    }
    EXPECT_GT(max_part, (4096 / 8) * 17 / 10) << "workload was not skewed "
                                                 "enough to exercise the fix";
}

INSTANTIATE_TEST_SUITE_P(Modes, SkewedShuffleTest, ::testing::Bool());

TEST(SkewedShuffle, UniformCapacityUnchanged)
{
    // The skew fix must not disturb uniform workloads: capacities stay at
    // the flat estimate, preserving memory layout (and byte-identical
    // campaign reports).
    MemoryPool pool(shuffleGeo());
    WorkloadConfig wcfg;
    wcfg.tuples = 2048;
    Relation in = WorkloadGenerator(wcfg).makeUniform(pool, 2048);
    ExecConfig cfg = nmpExec(8, false, false);
    Partitioner part(pool, cfg);
    std::vector<TraceRecorder> recs(8);
    PartitionFn fn = PartitionFn::lowBits(8);
    Relation out = part.shuffleNmp(in, fn, recs, nullptr);
    const std::uint64_t flat = static_cast<std::uint64_t>(
        (2048.0 / 8) * cfg.shuffleCapacityFactor) + 16;
    for (unsigned v = 0; v < 8; ++v)
        EXPECT_EQ(out.partition(v).capacity, flat);
}

TEST(CpuShuffle, BoundsPartitionTheGlobalArray)
{
    MemoryPool pool(shuffleGeo());
    WorkloadConfig wcfg;
    wcfg.tuples = 2048;
    Relation in = WorkloadGenerator(wcfg).makeUniform(pool, 2048);
    ExecConfig cfg = cpuExec(8);
    cfg.numUnits = 4;
    Partitioner part(pool, cfg);
    std::vector<TraceRecorder> recs(4);
    PartitionFn fn = PartitionFn::lowBits(16);
    auto res = part.shuffleCpu(in, fn, 16, recs);

    EXPECT_EQ(res.bounds.front(), 0u);
    EXPECT_EQ(res.bounds.back(), 2048u);
    // Every tuple sits in the partition its key hashes to.
    for (unsigned p = 0; p < 16; ++p) {
        for (std::uint64_t g = res.bounds[p]; g < res.bounds[p + 1]; ++g) {
            Tuple t = pool.store().readValue<Tuple>(
                Partitioner::globalTupleAddr(res.out, res.chunkTuples, g));
            EXPECT_EQ(fn(t.key), p);
        }
    }
}

TEST(CpuShuffle, PreservesMultiset)
{
    MemoryPool pool(shuffleGeo());
    WorkloadConfig wcfg;
    wcfg.tuples = 1024;
    Relation in = WorkloadGenerator(wcfg).makeUniform(pool, 1024);
    ExecConfig cfg = cpuExec(8);
    cfg.numUnits = 4;
    Partitioner part(pool, cfg);
    std::vector<TraceRecorder> recs(4);
    PartitionFn fn = PartitionFn::lowBits(8);
    auto res = part.shuffleCpu(in, fn, 8, recs);

    std::vector<Tuple> out;
    for (std::uint64_t g = 0; g < 1024; ++g)
        out.push_back(pool.store().readValue<Tuple>(
            Partitioner::globalTupleAddr(res.out, res.chunkTuples, g)));
    EXPECT_EQ(asMultiset(out), asMultiset(in.gatherAll(pool)));
}

TEST(CpuShuffle, TlbPressureEmitsPageWalks)
{
    MemoryPool pool(shuffleGeo());
    WorkloadConfig wcfg;
    wcfg.tuples = 512;
    Relation in = WorkloadGenerator(wcfg).makeUniform(pool, 512);
    ExecConfig cfg = cpuExec(8);
    cfg.numUnits = 4;
    cfg.tlbEntries = 8;
    Partitioner part(pool, cfg);
    std::vector<TraceRecorder> recs(4);
    auto res = part.shuffleCpu(in, PartitionFn::lowBits(16), 16, recs);
    (void)res;
    std::uint64_t blocking = 0;
    for (auto &rec : recs)
        for (const auto &op : rec.trace().ops())
            blocking += op.kind == TraceOpKind::kLoadBlocking ? 1 : 0;
    EXPECT_EQ(blocking, 3u * 512); // three-level walk per scattered store
}

TEST(CpuShuffle, NoWalksUnderTlbReach)
{
    MemoryPool pool(shuffleGeo());
    WorkloadConfig wcfg;
    wcfg.tuples = 512;
    Relation in = WorkloadGenerator(wcfg).makeUniform(pool, 512);
    ExecConfig cfg = cpuExec(8);
    cfg.numUnits = 4;
    cfg.tlbEntries = 64;
    Partitioner part(pool, cfg);
    std::vector<TraceRecorder> recs(4);
    part.shuffleCpu(in, PartitionFn::lowBits(16), 16, recs);
    for (auto &rec : recs)
        for (const auto &op : rec.trace().ops())
            EXPECT_NE(op.kind, TraceOpKind::kLoadBlocking);
}
