/** @file Tests for relations, memory pools, and workload generators. */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "engine/relation.hh"
#include "engine/workload.hh"
#include "system/config.hh"

using namespace mondrian;

namespace {

MemGeometry
tinyGeo()
{
    MemGeometry g;
    g.numStacks = 1;
    g.vaultsPerStack = 4;
    g.banksPerVault = 4;
    g.rowBytes = 256;
    g.vaultBytes = 512 * kKiB;
    return g;
}

} // namespace

TEST(Relation, AllocAndRoundTrip)
{
    MemoryPool pool(tinyGeo());
    Relation r = Relation::alloc(pool, {0, 2}, 16);
    EXPECT_EQ(r.numPartitions(), 2u);
    EXPECT_EQ(r.partition(1).vault, 2u);
    r.append(pool, 0, Tuple{1, 2});
    r.append(pool, 0, Tuple{3, 4});
    EXPECT_EQ(r.partition(0).count, 2u);
    EXPECT_EQ(r.readTuple(pool, 0, 0), (Tuple{1, 2}));
    EXPECT_EQ(r.readTuple(pool, 0, 1), (Tuple{3, 4}));
}

TEST(Relation, ScatterGather)
{
    MemoryPool pool(tinyGeo());
    Relation r = Relation::alloc(pool, {1}, 64);
    std::vector<Tuple> tuples;
    for (std::uint64_t i = 0; i < 40; ++i)
        tuples.push_back(Tuple{i, i * i});
    r.scatter(pool, 0, tuples);
    EXPECT_EQ(r.gather(pool, 0), tuples);
    EXPECT_EQ(r.totalTuples(), 40u);
}

TEST(Relation, AllocAcrossAllSplitsEvenly)
{
    MemoryPool pool(tinyGeo());
    Relation r = Relation::allocAcrossAll(pool, 100);
    EXPECT_EQ(r.numPartitions(), 4u);
    for (unsigned p = 0; p < 4; ++p)
        EXPECT_EQ(r.partition(p).capacity, 25u);
}

TEST(Relation, TupleAddressesInsideVault)
{
    MemoryPool pool(tinyGeo());
    Relation r = Relation::allocAcrossAll(pool, 64);
    for (std::size_t p = 0; p < r.numPartitions(); ++p) {
        Addr a = r.tupleAddr(p, 0);
        EXPECT_EQ(pool.map().vaultOf(a), r.partition(p).vault);
    }
}

TEST(MemoryPool, AllocationTracksRemaining)
{
    MemoryPool pool(tinyGeo());
    std::uint64_t before = pool.remaining(3);
    pool.allocBytes(3, 1024);
    EXPECT_LE(pool.remaining(3), before - 1024);
}

TEST(Workload, UniformDeterministic)
{
    WorkloadConfig cfg;
    cfg.tuples = 512;
    cfg.seed = 9;
    MemoryPool p1(tinyGeo()), p2(tinyGeo());
    WorkloadGenerator g1(cfg), g2(cfg);
    auto r1 = g1.makeUniform(p1, 512).gatherAll(p1);
    auto r2 = g2.makeUniform(p2, 512).gatherAll(p2);
    EXPECT_EQ(r1, r2);
}

TEST(Workload, SeedChangesData)
{
    WorkloadConfig a, b;
    a.tuples = b.tuples = 256;
    a.seed = 1;
    b.seed = 2;
    MemoryPool p1(tinyGeo()), p2(tinyGeo());
    auto r1 = WorkloadGenerator(a).makeUniform(p1, 256).gatherAll(p1);
    auto r2 = WorkloadGenerator(b).makeUniform(p2, 256).gatherAll(p2);
    EXPECT_NE(r1, r2);
}

TEST(Workload, JoinPairForeignKeyProperty)
{
    WorkloadConfig cfg;
    cfg.tuples = 1024;
    cfg.joinSmallRatio = 0.25;
    MemoryPool pool(tinyGeo());
    auto pair = WorkloadGenerator(cfg).makeJoinPair(pool);
    auto r = pair.r.gatherAll(pool);
    auto s = pair.s.gatherAll(pool);
    EXPECT_EQ(r.size(), 256u);
    EXPECT_EQ(s.size(), 1024u);
    // R keys are unique and cover [0, |R|).
    std::set<std::uint64_t> r_keys;
    for (const Tuple &t : r)
        r_keys.insert(t.key);
    EXPECT_EQ(r_keys.size(), r.size());
    EXPECT_EQ(*r_keys.rbegin(), r.size() - 1);
    // Every S key hits R exactly once.
    for (const Tuple &t : s)
        EXPECT_TRUE(r_keys.count(t.key));
}

TEST(Workload, GroupByCardinality)
{
    WorkloadConfig cfg;
    cfg.tuples = 4096;
    MemoryPool pool(tinyGeo());
    auto rel = WorkloadGenerator(cfg).makeGroupBy(pool, 4096);
    std::set<std::uint64_t> keys;
    for (const Tuple &t : rel.gatherAll(pool))
        keys.insert(t.key);
    // Average group size ~4 (§6): cardinality near tuples/4.
    EXPECT_LE(keys.size(), 1024u);
    EXPECT_GT(keys.size(), 900u);
}

TEST(Workload, ZipfSkewsKeys)
{
    WorkloadConfig cfg;
    cfg.tuples = 4096;
    cfg.zipfTheta = 1.0;
    MemoryPool pool(tinyGeo());
    auto rel = WorkloadGenerator(cfg).makeGroupBy(pool, 4096);
    std::map<std::uint64_t, unsigned> hist;
    for (const Tuple &t : rel.gatherAll(pool))
        hist[t.key]++;
    unsigned max_count = 0;
    for (auto &[k, c] : hist)
        max_count = std::max(max_count, c);
    // The hottest key dominates far beyond the uniform expectation (~4).
    EXPECT_GT(max_count, 100u);
}

TEST(Workload, RoundRobinPlacementBalances)
{
    WorkloadConfig cfg;
    cfg.tuples = 1000;
    MemoryPool pool(tinyGeo());
    auto rel = WorkloadGenerator(cfg).makeUniform(pool, 1000);
    for (std::size_t p = 0; p < rel.numPartitions(); ++p)
        EXPECT_NEAR(static_cast<double>(rel.partition(p).count), 250.0, 1.0);
}
