/** @file Typed report loading: v2/v1 schemas, axis labels, fail-loud. */

#include <gtest/gtest.h>

#include "common/json.hh"
#include "system/campaign.hh"
#include "system/report.hh"
#include "system/report_model.hh"

using namespace mondrian;

namespace {

/** Two swept axes (theta x op) plus a baseline, cheap at 2^8. */
CampaignGrid
modelGrid()
{
    CampaignGrid grid;
    grid.systems = {SystemKind::kCpu, SystemKind::kMondrian};
    grid.scenarios = {degenerateScenario(OpKind::kScan), degenerateScenario(OpKind::kJoin)};
    grid.log2Tuples = {8};
    grid.seeds = {42};
    grid.zipfThetas = {0.0, 0.5};
    return grid;
}

} // namespace

TEST(ReportModel, RoundTripsV2Report)
{
    CampaignGrid grid = modelGrid();
    CampaignReport report = CampaignRunner(grid).run(1);
    std::string json = campaignReportJson(report);

    ReportModel m;
    std::string err;
    ASSERT_TRUE(loadReportModel(json, m, err)) << err;
    EXPECT_EQ(m.schemaVersion, 2);
    EXPECT_EQ(m.paper, "conf_isca_DrumondDMUPFGP17");
    EXPECT_EQ(m.baseline, "cpu");

    // Axis values are derived from the runs, in grid order.
    EXPECT_EQ(m.systems, (std::vector<std::string>{"cpu", "mondrian"}));
    EXPECT_EQ(m.scenarios, (std::vector<std::string>{"scan", "join"}));
    EXPECT_EQ(m.log2Tuples, std::vector<unsigned>{8});
    EXPECT_EQ(m.seeds, std::vector<std::uint64_t>{42});
    EXPECT_EQ(m.geometries,
              std::vector<std::string>{geometryName(defaultGeometry())});
    EXPECT_EQ(m.execs, std::vector<std::string>{"base"});
    EXPECT_EQ(m.zipfThetas, (std::vector<double>{0.0, 0.5}));

    // Every run round-trips: exact integers, 12-digit doubles, phases.
    ASSERT_EQ(m.runs.size(), report.runs.size());
    for (std::size_t i = 0; i < m.runs.size(); ++i) {
        const ReportRun &got = m.runs[i];
        const CampaignRun &want = report.runs[i];
        EXPECT_EQ(got.index, want.job.index);
        EXPECT_EQ(got.system, systemKindName(want.job.system));
        EXPECT_EQ(got.scenario, want.job.scenario.name);
        EXPECT_EQ(got.log2Tuples, want.job.log2Tuples);
        EXPECT_EQ(got.seed, want.job.seed);
        EXPECT_EQ(got.geometry, geometryName(want.job.geometry));
        EXPECT_EQ(got.exec, want.job.exec.name());
        EXPECT_DOUBLE_EQ(got.zipfTheta, want.job.zipfTheta);
        EXPECT_EQ(got.result.totalTime, want.result.totalTime);
        EXPECT_EQ(got.result.partitionTime, want.result.partitionTime);
        EXPECT_EQ(got.result.aggChecksum, want.result.aggChecksum);
        EXPECT_EQ(got.result.phases.size(), want.result.phases.size());
        EXPECT_NEAR(got.result.energy.total(), want.result.energy.total(),
                    want.result.energy.total() * 1e-9);
    }

    ASSERT_EQ(m.summaries.size(), report.summaries.size());
    for (std::size_t i = 0; i < m.summaries.size(); ++i) {
        EXPECT_EQ(m.summaries[i].system, report.summaries[i].system);
        EXPECT_EQ(m.summaries[i].runs, report.summaries[i].runs);
        EXPECT_NEAR(m.summaries[i].geomeanSpeedup,
                    report.summaries[i].geomeanSpeedup,
                    report.summaries[i].geomeanSpeedup * 1e-9);
    }
}

TEST(ReportModel, LoadsV1ReportsAtDefaultAxes)
{
    // Hand-built v1 report (the pre-axis schema): axis labels default to
    // what a v1 campaign actually simulated.
    WorkloadConfig wl;
    wl.tuples = 1u << 8;
    RunResult r = Runner(wl).run(SystemKind::kCpu, OpKind::kScan);
    JsonWriter w;
    w.beginObject();
    w.member("schema", "mondrian-campaign-v1");
    w.key("grid").beginObject();
    w.member("zipf_theta", 0.25);
    w.endObject();
    w.key("runs").beginArray();
    w.beginObject();
    w.member("index", std::uint64_t{0});
    w.member("system", "cpu");
    w.member("op", "scan");
    w.member("log2_tuples", std::uint64_t{8});
    w.member("seed", std::uint64_t{42});
    w.key("result");
    writeRunResult(w, r);
    w.endObject();
    w.endArray();
    w.endObject();

    ReportModel m;
    std::string err;
    ASSERT_TRUE(loadReportModel(w.str(), m, err)) << err;
    EXPECT_EQ(m.schemaVersion, 1);
    EXPECT_EQ(m.baseline, "");
    ASSERT_EQ(m.runs.size(), 1u);
    EXPECT_EQ(m.runs[0].geometry, geometryName(defaultGeometry()));
    EXPECT_EQ(m.runs[0].exec, "base");
    EXPECT_DOUBLE_EQ(m.runs[0].zipfTheta, 0.25);
    EXPECT_EQ(m.runs[0].result.totalTime, r.totalTime);
}

TEST(ReportModel, PointAndGroupKeysSeparateEveryAxis)
{
    ReportRun base;
    base.system = "cpu";
    base.scenario = "join";
    base.log2Tuples = 14;
    base.seed = 42;
    base.geometry = "4x16x8-8MiB-r256";
    base.exec = "base";
    base.zipfTheta = 0.0;

    // The group key ignores the system (that's what pairing means) ...
    ReportRun sys = base;
    sys.system = "nmp";
    EXPECT_EQ(sys.groupKey(), base.groupKey());
    EXPECT_NE(sys.pointKey(), base.pointKey());

    // ... and every other axis separates both keys.
    auto differs = [&base](ReportRun v) {
        EXPECT_NE(v.groupKey(), base.groupKey());
        EXPECT_NE(v.pointKey(), base.pointKey());
    };
    ReportRun v = base;
    v.scenario = "scan";
    differs(v);
    v = base;
    v.log2Tuples = 15;
    differs(v);
    v = base;
    v.seed = 43;
    differs(v);
    v = base;
    v.geometry = "2x8x8-8MiB-r256";
    differs(v);
    v = base;
    v.exec = "radix=9";
    differs(v);
    v = base;
    v.zipfTheta = 0.75;
    differs(v);
}

TEST(ReportModel, RejectsMalformedDocuments)
{
    ReportModel m;
    std::string err;
    EXPECT_FALSE(loadReportModel("not json", m, err));
    EXPECT_FALSE(loadReportModel("{\"schema\": \"something-else\"}", m, err));
    EXPECT_NE(err.find("something-else"), std::string::npos);
    // A report without runs is not analyzable.
    EXPECT_FALSE(loadReportModel(
        "{\"schema\": \"mondrian-campaign-v2\"}", m, err));
    EXPECT_NE(err.find("runs"), std::string::npos);

    // Unlike the best-effort resume cache, a malformed run entry fails
    // the whole load: analysis over a half-parsed report would produce
    // confidently wrong numbers.
    EXPECT_FALSE(loadReportModel(
        "{\"schema\": \"mondrian-campaign-v2\", \"runs\": [{\"system\": "
        "\"cpu\"}]}",
        m, err));
    EXPECT_NE(err.find("run 0"), std::string::npos);

    // A v2 run without axis labels is malformed, not defaulted.
    EXPECT_FALSE(loadReportModel(
        "{\"schema\": \"mondrian-campaign-v2\", \"runs\": [{"
        "\"system\": \"cpu\", \"op\": \"scan\", \"log2_tuples\": 8, "
        "\"seed\": 42, \"result\": {\"system\": \"cpu\", \"op\": "
        "\"scan\"}}]}",
        m, err));
    EXPECT_NE(err.find("axis label"), std::string::npos);

    // Wrong-typed coordinates (e.g. a string scale from a foreign
    // serializer) would decode as 0 and corrupt every point key.
    EXPECT_FALSE(loadReportModel(
        "{\"schema\": \"mondrian-campaign-v2\", \"runs\": [{"
        "\"system\": \"cpu\", \"op\": \"scan\", \"log2_tuples\": \"14\", "
        "\"seed\": 42, \"geometry\": \"g\", \"exec\": \"base\", "
        "\"zipf_theta\": 0, \"result\": {\"system\": \"cpu\", \"op\": "
        "\"scan\"}}]}",
        m, err));
    EXPECT_NE(err.find("wrong-typed"), std::string::npos);

    EXPECT_FALSE(loadReportFile("/nonexistent/report.json", m, err));
    EXPECT_NE(err.find("/nonexistent/report.json"), std::string::npos);
}

TEST(ReportModel, RejectsDuplicateGridPoints)
{
    // Two runs at one grid point make every per-point analysis
    // ambiguous; the load fails instead of letting a last-wins lookup
    // pick one silently.
    CampaignGrid grid;
    grid.systems = {SystemKind::kCpu};
    grid.scenarios = {degenerateScenario(OpKind::kScan)};
    grid.log2Tuples = {8};
    grid.seeds = {42};
    CampaignReport report = CampaignRunner(grid).run(1);
    report.runs.push_back(report.runs.front());
    ReportModel m;
    std::string err;
    EXPECT_FALSE(loadReportModel(campaignReportJson(report), m, err));
    EXPECT_NE(err.find("duplicate run at grid point"), std::string::npos);
}

TEST(ReportModel, LoadsCheckedInGoldenReport)
{
    // The nightly regression artifact: full paper grid at 2^14.
    ReportModel m;
    std::string err;
    ASSERT_TRUE(loadReportFile(std::string(MONDRIAN_SOURCE_DIR) +
                                   "/scripts/golden/paper14-report.json",
                               m, err))
        << err;
    EXPECT_EQ(m.schemaVersion, 2);
    EXPECT_EQ(m.baseline, "cpu");
    EXPECT_EQ(m.systems.size(), 7u);
    EXPECT_EQ(m.scenarios.size(), 4u);
    EXPECT_EQ(m.runs.size(), 28u);
    EXPECT_EQ(m.log2Tuples, std::vector<unsigned>{14});
    EXPECT_EQ(m.summaries.size(), 6u);
    for (const ReportRun &r : m.runs)
        EXPECT_GT(r.result.totalTime, 0u);
}
