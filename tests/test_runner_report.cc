/** @file End-to-end runner tests and report math. */

#include <gtest/gtest.h>

#include "system/report.hh"
#include "system/runner.hh"

using namespace mondrian;

namespace {

WorkloadConfig
smallWorkload()
{
    WorkloadConfig wl;
    wl.tuples = 1u << 12;
    wl.seed = 7;
    return wl;
}

} // namespace

TEST(Runner, ScanRunsOnAllSystems)
{
    Runner runner(smallWorkload());
    for (SystemKind k : {SystemKind::kCpu, SystemKind::kNmp,
                         SystemKind::kMondrian}) {
        RunResult r = runner.run(k, OpKind::kScan);
        EXPECT_GT(r.totalTime, 0u) << systemKindName(k);
        EXPECT_EQ(r.partitionTime, 0u);
        EXPECT_GT(r.probeTime, 0u);
        EXPECT_GT(r.energy.total(), 0.0);
    }
}

TEST(Runner, JoinFunctionalAgreementAcrossSystems)
{
    Runner runner(smallWorkload());
    RunResult cpu = runner.run(SystemKind::kCpu, OpKind::kJoin);
    RunResult mon = runner.run(SystemKind::kMondrian, OpKind::kJoin);
    EXPECT_EQ(cpu.joinMatches, smallWorkload().tuples);
    EXPECT_EQ(mon.joinMatches, cpu.joinMatches);
}

TEST(Runner, GroupByChecksumStableAcrossSystems)
{
    Runner runner(smallWorkload());
    RunResult a = runner.run(SystemKind::kNmpRand, OpKind::kGroupBy);
    RunResult b = runner.run(SystemKind::kMondrian, OpKind::kGroupBy);
    EXPECT_EQ(a.aggChecksum, b.aggChecksum);
    EXPECT_EQ(a.groupCount, b.groupCount);
}

TEST(Runner, PhaseTimesSumToTotal)
{
    Runner runner(smallWorkload());
    RunResult r = runner.run(SystemKind::kNmp, OpKind::kJoin);
    EXPECT_EQ(r.partitionTime + r.probeTime, r.totalTime);
    Tick sum = 0;
    for (const auto &p : r.phases)
        sum += p.time;
    EXPECT_EQ(sum, r.totalTime);
}

TEST(Report, SpeedupMath)
{
    RunResult base, sys;
    base.totalTime = 1000;
    base.partitionTime = 600;
    base.probeTime = 400;
    sys.totalTime = 100;
    sys.partitionTime = 50;
    sys.probeTime = 50;
    EXPECT_DOUBLE_EQ(overallSpeedup(base, sys), 10.0);
    EXPECT_DOUBLE_EQ(partitionSpeedup(base, sys), 12.0);
    EXPECT_DOUBLE_EQ(probeSpeedup(base, sys), 8.0);
}

TEST(Report, EfficiencyIsInverseEnergyRatio)
{
    RunResult base, sys;
    base.energy.cores = 2.0;
    sys.energy.cores = 0.5;
    EXPECT_DOUBLE_EQ(efficiencyImprovement(base, sys), 4.0);
}

TEST(Report, EnergySharesSumToOne)
{
    RunResult r;
    r.energy.dramDynamic = 1.0;
    r.energy.dramStatic = 2.0;
    r.energy.cores = 3.0;
    r.energy.network = 4.0;
    EnergyShares s = energyShares(r);
    EXPECT_NEAR(s.dramDynamic + s.dramStatic + s.cores + s.network, 1.0,
                1e-12);
    EXPECT_NEAR(s.network, 0.4, 1e-12);
}

TEST(Report, TableRendersAligned)
{
    std::string t = renderTable({{"a", "bb"}, {"ccc", "d"}});
    EXPECT_NE(t.find("a    bb"), std::string::npos);
    EXPECT_NE(t.find("ccc  d"), std::string::npos);
    EXPECT_NE(t.find("-----"), std::string::npos);
}

TEST(Report, FormatsDigits)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(3.0, 0), "3");
}

TEST(Report, DescribeRunMentionsPhases)
{
    Runner runner(smallWorkload());
    RunResult r = runner.run(SystemKind::kNmp, OpKind::kJoin);
    std::string d = describeRun(r);
    EXPECT_NE(d.find("join"), std::string::npos);
    EXPECT_NE(d.find("partition"), std::string::npos);
    EXPECT_NE(d.find("GB/s/vault"), std::string::npos);
}

TEST(SystemConfig, PresetsMatchPaper)
{
    SystemConfig cpu = makeSystem(SystemKind::kCpu);
    EXPECT_EQ(cpu.topo, Topology::kStarCpu);
    EXPECT_EQ(cpu.exec.numUnits, 16u);
    EXPECT_TRUE(cpu.hasLlc);

    SystemConfig nmp = makeSystem(SystemKind::kNmp);
    EXPECT_EQ(nmp.topo, Topology::kFullyConnectedNmp);
    EXPECT_EQ(nmp.exec.numUnits, 64u);
    EXPECT_FALSE(nmp.hasLlc);
    EXPECT_FALSE(nmp.exec.permutable);

    SystemConfig perm = makeSystem(SystemKind::kNmpPerm);
    EXPECT_TRUE(perm.exec.permutable);
    EXPECT_FALSE(perm.exec.sortProbe);

    SystemConfig seq = makeSystem(SystemKind::kNmpSeq);
    EXPECT_TRUE(seq.exec.sortProbe);

    SystemConfig mon = makeSystem(SystemKind::kMondrian);
    EXPECT_TRUE(mon.exec.permutable);
    EXPECT_TRUE(mon.exec.sortProbe);
    EXPECT_TRUE(mon.exec.simd);
    EXPECT_EQ(mon.exec.readChunkBytes, 256u);
    EXPECT_FALSE(mon.hasL1);

    SystemConfig noperm = makeSystem(SystemKind::kMondrianNoperm);
    EXPECT_FALSE(noperm.exec.permutable);
    EXPECT_TRUE(noperm.exec.simd);
}

TEST(SystemConfig, DefaultGeometryMatchesMethodology)
{
    MemGeometry g = defaultGeometry();
    EXPECT_EQ(g.numStacks, 4u);       // four cubes (§6)
    EXPECT_EQ(g.vaultsPerStack, 16u); // 16 vaults per cube
    EXPECT_EQ(g.totalVaults(), 64u);
    EXPECT_EQ(g.rowBytes, 256u);      // HMC row buffer (§3.1)
}
