/** @file Scenario API: spec parsing, stage chaining, scenario campaigns. */

#include <gtest/gtest.h>

#include "common/json_parse.hh"
#include "system/campaign.hh"
#include "system/report.hh"
#include "system/report_model.hh"
#include "system/runner.hh"
#include "system/scenario.hh"

using namespace mondrian;

namespace {

Scenario
parseOk(const std::string &spec)
{
    Scenario sc;
    std::string err;
    EXPECT_TRUE(scenarioFromSpec(spec, sc, err)) << spec << ": " << err;
    return sc;
}

WorkloadConfig
smallWorkload(std::uint64_t tuples = 1u << 10)
{
    WorkloadConfig wl;
    wl.tuples = tuples;
    wl.seed = 7;
    return wl;
}

} // namespace

TEST(ScenarioSpec, DegenerateOpsPreserveTodaysNames)
{
    for (OpKind op : allOpKinds()) {
        Scenario sc = parseOk(opKindName(op));
        EXPECT_TRUE(sc.degenerate());
        EXPECT_EQ(sc.name, opKindName(op)); // byte-for-byte
        ASSERT_EQ(sc.stages.size(), 1u);
        EXPECT_EQ(sc.stages[0].op, op);
        EXPECT_EQ(sc.stages[0].input, StageInput::kGenerated);
    }
}

TEST(ScenarioSpec, SessionsPresetExpandsToTheClickstreamPipeline)
{
    Scenario sc = parseOk("sessions");
    EXPECT_FALSE(sc.degenerate());
    EXPECT_EQ(sc.name, "sessions");
    ASSERT_EQ(sc.stages.size(), 4u);
    EXPECT_EQ(sc.stages[0].spark, "filter");
    EXPECT_EQ(sc.stages[0].op, OpKind::kScan);
    EXPECT_EQ(sc.stages[0].input, StageInput::kGenerated);
    EXPECT_EQ(sc.stages[1].spark, "join");
    EXPECT_EQ(sc.stages[1].op, OpKind::kJoin);
    EXPECT_EQ(sc.stages[1].input, StageInput::kPrevOutput);
    EXPECT_EQ(sc.stages[2].spark, "reduceByKey");
    EXPECT_EQ(sc.stages[2].op, OpKind::kGroupBy);
    EXPECT_EQ(sc.stages[3].spark, "sortByKey");
    EXPECT_EQ(sc.stages[3].op, OpKind::kSort);

    // The explicit chain spec builds the same pipeline under its own
    // canonical name.
    Scenario chain = parseOk("filter>join>reduceByKey>sortByKey");
    EXPECT_EQ(chain.name, "filter>join>reduceByKey>sortByKey");
    ASSERT_EQ(chain.stages.size(), sc.stages.size());
    for (std::size_t i = 0; i < sc.stages.size(); ++i) {
        EXPECT_EQ(chain.stages[i].spark, sc.stages[i].spark);
        EXPECT_EQ(chain.stages[i].op, sc.stages[i].op);
        EXPECT_EQ(chain.stages[i].input, sc.stages[i].input);
    }
}

TEST(ScenarioSpec, EveryTable1TokenParsesAsAStage)
{
    for (const auto &[token, op] : scenarioStageTokens()) {
        Scenario sc = parseOk(token);
        ASSERT_EQ(sc.stages.size(), 1u) << token;
        EXPECT_EQ(sc.stages[0].op, op) << token;
    }
}

TEST(ScenarioSpec, MalformedSpecsAreRejectedWithContext)
{
    Scenario sink;
    std::string err;
    EXPECT_FALSE(scenarioFromSpec("", sink, err));
    EXPECT_NE(err.find("empty"), std::string::npos);

    EXPECT_FALSE(scenarioFromSpec("bogus", sink, err));
    EXPECT_NE(err.find("bogus"), std::string::npos);
    EXPECT_NE(err.find("sessions"), std::string::npos); // lists presets

    // Stray '>'s: leading, trailing, doubled.
    for (const std::string spec :
         {">filter", "filter>", "filter>>join", ">"}) {
        EXPECT_FALSE(scenarioFromSpec(spec, sink, err)) << spec;
        EXPECT_NE(err.find("empty stage"), std::string::npos) << spec;
    }

    // Presets and degenerate op names are whole-spec words, not chain
    // stages.
    EXPECT_FALSE(scenarioFromSpec("sessions>filter", sink, err));
    EXPECT_FALSE(scenarioFromSpec("scan>join", sink, err));

    // Table 1 names are canonical camelCase tokens, exactly.
    EXPECT_FALSE(scenarioFromSpec("Filter>Join", sink, err));
}

TEST(ScenarioRun, StageNConsumesStageNMinus1Output)
{
    Runner runner(smallWorkload());
    RunResult res = runner.run(SystemKind::kMondrian, parseOk("sessions"));
    ASSERT_EQ(res.stages.size(), 4u);
    for (std::size_t i = 1; i < res.stages.size(); ++i) {
        EXPECT_EQ(res.stages[i].input, "prev");
        EXPECT_EQ(res.stages[i].inputTuples,
                  res.stages[i - 1].outputTuples)
            << "stage " << i;
    }
    // The pipeline actually reduces: groupby shrinks the flow.
    EXPECT_LT(res.stages[2].outputTuples, res.stages[2].inputTuples);
    EXPECT_EQ(res.stages[3].outputTuples, res.stages[2].outputTuples);

    // Aggregates are sums over the stages.
    Tick total = 0;
    double energy = 0.0;
    for (const StageResult &s : res.stages) {
        total += s.totalTime;
        energy += s.energy.total();
        EXPECT_GT(s.totalTime, 0u) << s.stage;
        EXPECT_GT(s.energy.total(), 0.0) << s.stage;
    }
    EXPECT_EQ(total, res.totalTime);
    EXPECT_NEAR(energy, res.energy.total(), res.energy.total() * 1e-9);

    // Top-level phases carry stage-token prefixes.
    ASSERT_FALSE(res.phases.empty());
    EXPECT_EQ(res.phases.front().name.rfind("filter.", 0), 0u);
}

TEST(ScenarioRun, FunctionalResultsAgreeAcrossSystems)
{
    Runner runner(smallWorkload());
    Scenario sessions = parseOk("sessions");
    RunResult ref = runner.run(SystemKind::kCpu, sessions);
    for (SystemKind k :
         {SystemKind::kNmp, SystemKind::kNmpSeq, SystemKind::kMondrian}) {
        RunResult res = runner.run(k, sessions);
        ASSERT_EQ(res.stages.size(), ref.stages.size());
        for (std::size_t i = 0; i < ref.stages.size(); ++i) {
            const StageResult &a = ref.stages[i];
            const StageResult &b = res.stages[i];
            EXPECT_EQ(a.scanMatches, b.scanMatches) << a.stage;
            EXPECT_EQ(a.joinMatches, b.joinMatches) << a.stage;
            EXPECT_EQ(a.groupCount, b.groupCount) << a.stage;
            EXPECT_EQ(a.aggChecksum, b.aggChecksum) << a.stage;
            EXPECT_EQ(a.inputTuples, b.inputTuples) << a.stage;
            EXPECT_EQ(a.outputTuples, b.outputTuples) << a.stage;
        }
    }
}

TEST(ScenarioRun, DegenerateScenarioMatchesClassicOpRunByteForByte)
{
    Runner runner(smallWorkload());
    for (OpKind op : allOpKinds()) {
        RunResult classic = runner.run(SystemKind::kMondrian, op);
        RunResult scenario =
            runner.run(SystemKind::kMondrian, degenerateScenario(op));
        EXPECT_TRUE(classic.stages.empty());
        EXPECT_EQ(runResultJson(classic), runResultJson(scenario))
            << opKindName(op);
        // No stage list in the serialized form: classic consumers (and
        // v2 resume splices) see the historical document.
        EXPECT_EQ(runResultJson(classic).find("\"stages\""),
                  std::string::npos);
    }
}

TEST(ScenarioRun, StageResultsSerializeAndRoundTrip)
{
    Runner runner(smallWorkload());
    RunResult res = runner.run(SystemKind::kNmp, parseOk("sessions"));
    std::string json = runResultJson(res);
    EXPECT_NE(json.find("\"stages\""), std::string::npos);

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(json, doc, err)) << err;
    RunResult back;
    ASSERT_TRUE(readRunResult(doc, back));
    ASSERT_EQ(back.stages.size(), res.stages.size());
    for (std::size_t i = 0; i < res.stages.size(); ++i) {
        EXPECT_EQ(back.stages[i].stage, res.stages[i].stage);
        EXPECT_EQ(back.stages[i].op, res.stages[i].op);
        EXPECT_EQ(back.stages[i].input, res.stages[i].input);
        EXPECT_EQ(back.stages[i].totalTime, res.stages[i].totalTime);
        EXPECT_EQ(back.stages[i].inputTuples, res.stages[i].inputTuples);
        EXPECT_EQ(back.stages[i].outputTuples,
                  res.stages[i].outputTuples);
        EXPECT_EQ(back.stages[i].aggChecksum, res.stages[i].aggChecksum);
        EXPECT_EQ(back.stages[i].phases.size(),
                  res.stages[i].phases.size());
    }
}

TEST(ScenarioCampaign, V3ReportRoundTripsThroughTheModel)
{
    CampaignGrid grid;
    grid.systems = {SystemKind::kCpu, SystemKind::kMondrian};
    grid.scenarios = {degenerateScenario(OpKind::kScan),
                      parseOk("sessions")};
    grid.log2Tuples = {8};
    grid.seeds = {42};
    ASSERT_TRUE(gridHasPipelines(grid));
    CampaignReport report = CampaignRunner(grid).run(1);
    std::string json = campaignReportJson(report);
    EXPECT_NE(json.find("\"schema\": \"mondrian-campaign-v3\""),
              std::string::npos);
    EXPECT_NE(json.find("\"scenario\": \"sessions\""), std::string::npos);

    ReportModel m;
    std::string err;
    ASSERT_TRUE(loadReportModel(json, m, err)) << err;
    EXPECT_EQ(m.schemaVersion, 3);
    EXPECT_EQ(m.scenarios, (std::vector<std::string>{"scan", "sessions"}));
    ASSERT_EQ(m.runs.size(), 4u);
    // Degenerate runs carry no stages; pipeline runs carry all four.
    EXPECT_TRUE(m.runs[0].result.stages.empty());
    EXPECT_EQ(m.runs[2].result.stages.size(), 4u);
    EXPECT_EQ(m.runs[2].scenario, "sessions");
}

TEST(ScenarioCampaign, DegenerateGridsStillEmitV2)
{
    CampaignGrid grid = smokeGrid();
    EXPECT_FALSE(gridHasPipelines(grid));
    CampaignReport report = CampaignRunner(grid).run(1);
    std::string json = campaignReportJson(report);
    EXPECT_NE(json.find("\"schema\": \"mondrian-campaign-v2\""),
              std::string::npos);
    EXPECT_EQ(json.find("\"scenario\""), std::string::npos);
    EXPECT_EQ(json.find("\"stages\""), std::string::npos);
}

TEST(ScenarioCampaign, V2ResumeSplicesVerbatimIntoV3Reports)
{
    // A classic v2 single-op report ...
    CampaignGrid v2grid;
    v2grid.systems = {SystemKind::kCpu, SystemKind::kMondrian};
    v2grid.scenarios = {degenerateScenario(OpKind::kJoin)};
    v2grid.log2Tuples = {8};
    v2grid.seeds = {42};
    std::string v2json =
        campaignReportJson(CampaignRunner(v2grid).run(1));

    // ... resumed into a scenario sweep that includes the same point.
    CampaignGrid v3grid = v2grid;
    v3grid.scenarios.push_back(parseOk("sessions"));

    ResumeCache cache;
    std::string err;
    ASSERT_TRUE(cache.load(v2json, err)) << err;
    EXPECT_EQ(cache.size(), 2u);

    CampaignRunner resumed(v3grid);
    resumed.setResume(&cache);
    CampaignReport rep = resumed.run(1);
    EXPECT_EQ(rep.cachedRuns, 2u);
    std::string resumed_json = campaignReportJson(rep);

    // The spliced document is byte-identical to a fresh v3 run of the
    // same grid.
    std::string fresh_json =
        campaignReportJson(CampaignRunner(v3grid).run(1));
    EXPECT_EQ(resumed_json, fresh_json);

    // And a v3 report resumes into itself completely.
    ResumeCache v3cache;
    ASSERT_TRUE(v3cache.load(fresh_json, err)) << err;
    EXPECT_EQ(v3cache.size(), 4u);
    CampaignRunner again(v3grid);
    again.setResume(&v3cache);
    CampaignReport rep2 = again.run(1);
    EXPECT_EQ(rep2.cachedRuns, 4u);
    EXPECT_EQ(campaignReportJson(rep2), fresh_json);
}

TEST(ScenarioCampaign, ResumeIdentityEncodesStageStructure)
{
    // Two pipelines sharing a name but differing in stages must never
    // satisfy each other's cache entries.
    Scenario a = parseOk("filter>join");
    Scenario b = parseOk("filter>sortByKey");
    b.name = a.name; // a hypothetical renamed/restructured pipeline
    EXPECT_NE(scenarioIdentity(a), scenarioIdentity(b));
    // Degenerate identities stay the bare v1/v2 "op" labels.
    EXPECT_EQ(scenarioIdentity(degenerateScenario(OpKind::kJoin)),
              "join");

    // End to end: a v3 report's cache entries are keyed through its
    // scenarios table, so a grid running scenario `b` under a's name
    // gets no hits from a report simulated with a's stages.
    CampaignGrid grid;
    grid.systems = {SystemKind::kMondrian};
    grid.scenarios = {a};
    grid.log2Tuples = {8};
    grid.seeds = {42};
    std::string json = campaignReportJson(CampaignRunner(grid).run(1));

    ResumeCache cache;
    std::string err;
    ASSERT_TRUE(cache.load(json, err)) << err;
    EXPECT_EQ(cache.size(), 1u);

    CampaignGrid restructured = grid;
    restructured.scenarios = {b};
    CampaignRunner runner(restructured);
    runner.setResume(&cache);
    EXPECT_EQ(runner.run(1).cachedRuns, 0u);

    // The same grid resumes into itself completely.
    CampaignRunner same(grid);
    same.setResume(&cache);
    EXPECT_EQ(same.run(1).cachedRuns, 1u);
}

TEST(ScenarioCampaign, ValidateGridRejectsBadScenarioAxes)
{
    CampaignGrid grid = smokeGrid();
    std::string error;

    grid.scenarios.clear();
    EXPECT_FALSE(validateGrid(grid, error));
    EXPECT_NE(error.find("scenario axis is empty"), std::string::npos);

    grid = smokeGrid();
    grid.scenarios.push_back(grid.scenarios.front());
    EXPECT_FALSE(validateGrid(grid, error));
    EXPECT_NE(error.find("duplicate scenario"), std::string::npos);

    grid = smokeGrid();
    grid.scenarios.push_back(Scenario{"empty", {}});
    EXPECT_FALSE(validateGrid(grid, error));
    EXPECT_NE(error.find("no stages"), std::string::npos);

    // Pipelines accumulate footprint: a scenario that cannot fit the
    // pool at a swept scale fails fast, where the single op would fit.
    grid = smokeGrid();
    grid.scenarios = {parseOk("sessions")};
    grid.log2Tuples = {22};
    EXPECT_FALSE(validateGrid(grid, error));
    EXPECT_NE(error.find("does not fit"), std::string::npos);
}
