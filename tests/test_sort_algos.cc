/** @file Tests for the local sorters (mergesort, bitonic pass, quicksort). */

#include <gtest/gtest.h>

#include <algorithm>

#include "engine/sort_algos.hh"
#include "engine/workload.hh"
#include "system/config.hh"

using namespace mondrian;

namespace {

MemGeometry
sortGeo()
{
    MemGeometry g;
    g.numStacks = 1;
    g.vaultsPerStack = 2;
    g.banksPerVault = 4;
    g.rowBytes = 256;
    g.vaultBytes = 1 * kMiB;
    return g;
}

bool
isSortedByKey(const std::vector<Tuple> &tuples)
{
    return std::is_sorted(tuples.begin(), tuples.end(),
                          [](const Tuple &a, const Tuple &b) {
                              return a.key < b.key;
                          });
}

} // namespace

TEST(MergePassCount, Formula)
{
    EXPECT_EQ(LocalSorter::mergePassCount(1, 1), 0u);
    EXPECT_EQ(LocalSorter::mergePassCount(2, 1), 1u);
    EXPECT_EQ(LocalSorter::mergePassCount(1024, 1), 10u);
    EXPECT_EQ(LocalSorter::mergePassCount(1024, 16), 6u);
    EXPECT_EQ(LocalSorter::mergePassCount(1000, 16), 6u);
    EXPECT_EQ(LocalSorter::mergePassCount(8, 16), 0u);
}

/** §5.2: the bitonic first pass cuts log2(16) = 4 merge passes (~20% at
 *  the paper's vault fill of 32M tuples; exactly 4 at any size). */
TEST(MergePassCount, BitonicSavesFourPasses)
{
    for (std::uint64_t n : {1u << 10, 1u << 15, 1u << 20}) {
        EXPECT_EQ(LocalSorter::mergePassCount(n, 1) -
                      LocalSorter::mergePassCount(n, kBitonicGroup),
                  4u);
    }
}

class SorterStyleTest : public ::testing::TestWithParam<int>
{
  protected:
    ExecConfig
    styleConfig()
    {
        switch (GetParam()) {
          case 0:
            return nmpExec(2, false, true); // scalar mergesort
          case 1:
            return mondrianExec(2, true); // SIMD + bitonic
          default: {
            ExecConfig c = cpuExec(2);
            c.numUnits = 2;
            return c; // quicksort
          }
        }
    }
};

TEST_P(SorterStyleTest, SortsFunctionally)
{
    MemoryPool pool(sortGeo());
    WorkloadConfig wcfg;
    wcfg.tuples = 3000;
    Relation rel = WorkloadGenerator(wcfg).makeUniform(pool, 3000);
    ExecConfig cfg = styleConfig();
    LocalSorter sorter(pool, cfg);
    TraceRecorder rec;
    for (std::size_t p = 0; p < rel.numPartitions(); ++p) {
        sorter.sortPartition(rel, p, rec);
        EXPECT_TRUE(isSortedByKey(rel.gather(pool, p)));
    }
    EXPECT_GT(rec.trace().size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Styles, SorterStyleTest,
                         ::testing::Values(0, 1, 2));

TEST(Sorter, MergesortPassAccounting)
{
    MemoryPool pool(sortGeo());
    WorkloadConfig wcfg;
    wcfg.tuples = 2048;
    Relation rel = WorkloadGenerator(wcfg).makeUniform(pool, 2048);
    // ~1024 tuples per partition.
    ExecConfig scalar = nmpExec(2, false, true);
    TraceRecorder rec;
    auto passes = LocalSorter(pool, scalar).sortPartition(rel, 0, rec);
    EXPECT_EQ(passes.bitonicPasses, 0u);
    EXPECT_EQ(passes.mergePasses,
              LocalSorter::mergePassCount(rel.partition(0).count, 1));

    ExecConfig simd = mondrianExec(2, true);
    TraceRecorder rec2;
    auto p2 = LocalSorter(pool, simd).sortPartition(rel, 1, rec2);
    EXPECT_EQ(p2.bitonicPasses, 1u);
    EXPECT_EQ(p2.mergePasses, passes.mergePasses - 4);
}

TEST(Sorter, MergesortTraceMovesWholePartitionPerPass)
{
    MemoryPool pool(sortGeo());
    WorkloadConfig wcfg;
    wcfg.tuples = 1024;
    Relation rel = WorkloadGenerator(wcfg).makeUniform(pool, 1024);
    ExecConfig scalar = nmpExec(2, false, true);
    TraceRecorder rec;
    auto passes = LocalSorter(pool, scalar).sortPartition(rel, 0, rec);
    auto s = rec.trace().summarize();
    std::uint64_t bytes = rel.partition(0).count * kTupleBytes;
    EXPECT_EQ(s.loadBytes, bytes * passes.mergePasses);
    EXPECT_EQ(s.storeBytes, bytes * passes.mergePasses);
}

TEST(Sorter, SortSegmentsAcrossChunks)
{
    MemoryPool pool(sortGeo());
    ExecConfig cfg = cpuExec(2);
    cfg.numUnits = 2;
    LocalSorter sorter(pool, cfg);
    // Two disjoint segments; sorted result spans them in order.
    Addr a = pool.allocBytes(0, 10 * kTupleBytes);
    Addr b = pool.allocBytes(1, 10 * kTupleBytes);
    for (std::uint64_t i = 0; i < 10; ++i) {
        pool.store().writeValue(a + i * kTupleBytes, Tuple{19 - i, i});
        pool.store().writeValue(b + i * kTupleBytes, Tuple{9 - i, i});
    }
    TraceRecorder rec;
    sorter.sortSegments({{a, 10}, {b, 10}}, rec);
    std::vector<Tuple> out;
    for (std::uint64_t i = 0; i < 10; ++i)
        out.push_back(pool.store().readValue<Tuple>(a + i * kTupleBytes));
    for (std::uint64_t i = 0; i < 10; ++i)
        out.push_back(pool.store().readValue<Tuple>(b + i * kTupleBytes));
    EXPECT_TRUE(isSortedByKey(out));
    EXPECT_EQ(out.front().key, 0u);
    EXPECT_EQ(out.back().key, 19u);
}

TEST(Sorter, EmptyAndSingleton)
{
    MemoryPool pool(sortGeo());
    ExecConfig cfg = nmpExec(2, false, true);
    LocalSorter sorter(pool, cfg);
    Relation rel = Relation::alloc(pool, {0}, 4);
    TraceRecorder rec;
    auto p0 = sorter.sortPartition(rel, 0, rec); // empty
    EXPECT_EQ(p0.mergePasses, 0u);
    rel.append(pool, 0, Tuple{5, 5});
    auto p1 = sorter.sortPartition(rel, 0, rec);
    EXPECT_EQ(p1.mergePasses, 0u);
    EXPECT_EQ(rel.readTuple(pool, 0, 0), (Tuple{5, 5}));
}
