/** @file Tests for the Spark-style dataflow layer (Table 1). */

#include <gtest/gtest.h>

#include "engine/spark.hh"
#include "engine/workload.hh"
#include "system/config.hh"

using namespace mondrian;

namespace {

MemGeometry
sparkGeo()
{
    MemGeometry g;
    g.numStacks = 1;
    g.vaultsPerStack = 8;
    g.banksPerVault = 4;
    g.rowBytes = 256;
    g.vaultBytes = 1 * kMiB;
    return g;
}

} // namespace

TEST(Spark, Table1MappingComplete)
{
    const auto &table = sparkOperatorTable();
    EXPECT_EQ(table.size(), 14u);
    unsigned scans = 0, groups = 0, joins = 0, sorts = 0;
    for (const auto &[name, basic] : table) {
        switch (basic) {
          case BasicOp::kScan:
            ++scans;
            break;
          case BasicOp::kGroupBy:
            ++groups;
            break;
          case BasicOp::kJoin:
            ++joins;
            break;
          case BasicOp::kSort:
            ++sorts;
            break;
        }
    }
    // Table 1 row counts.
    EXPECT_EQ(scans, 6u);
    EXPECT_EQ(groups, 6u);
    EXPECT_EQ(joins, 1u);
    EXPECT_EQ(sorts, 1u);
}

TEST(Spark, BasicOpNames)
{
    EXPECT_STREQ(basicOpName(BasicOp::kScan), "scan");
    EXPECT_STREQ(basicOpName(BasicOp::kSort), "sort");
}

TEST(Spark, FilterLowersToScan)
{
    MemoryPool pool(sparkGeo());
    WorkloadConfig wl;
    wl.tuples = 1024;
    Relation rel = WorkloadGenerator(wl).makeUniform(pool, 1024);
    SparkContext ctx(pool, mondrianExec(8, true));
    auto result = ctx.filter(rel, 1);
    EXPECT_EQ(result.basicOp, BasicOp::kScan);
    EXPECT_EQ(result.exec.op, "scan");
}

TEST(Spark, ReduceByKeyLowersToGroupBy)
{
    MemoryPool pool(sparkGeo());
    WorkloadConfig wl;
    wl.tuples = 1024;
    Relation rel = WorkloadGenerator(wl).makeGroupBy(pool, 1024);
    SparkContext ctx(pool, nmpExec(8, true, false));
    auto result = ctx.reduceByKey(rel);
    EXPECT_EQ(result.basicOp, BasicOp::kGroupBy);
    EXPECT_GT(result.exec.groupCount, 0u);
}

TEST(Spark, SortByKeyProducesOrder)
{
    MemoryPool pool(sparkGeo());
    WorkloadConfig wl;
    wl.tuples = 1024;
    Relation rel = WorkloadGenerator(wl).makeUniform(pool, 1024);
    SparkContext ctx(pool, mondrianExec(8, true));
    auto result = ctx.sortByKey(rel);
    auto out = result.exec.output.gatherAll(pool);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end(),
                               [](const Tuple &a, const Tuple &b) {
                                   return a.key < b.key;
                               }));
}

TEST(Spark, JoinByName)
{
    MemoryPool pool(sparkGeo());
    WorkloadConfig wl;
    wl.tuples = 512;
    auto pair = WorkloadGenerator(wl).makeJoinPair(pool);
    SparkContext ctx(pool, nmpExec(8, false, false));
    auto result = ctx.lower("Join", pair.r, &pair.s);
    EXPECT_EQ(result.basicOp, BasicOp::kJoin);
    EXPECT_EQ(result.exec.joinMatches, 512u);
}

TEST(Spark, EveryTableEntryLowers)
{
    MemoryPool pool(sparkGeo());
    WorkloadConfig wl;
    wl.tuples = 256;
    WorkloadGenerator gen(wl);
    auto pair = gen.makeJoinPair(pool);
    SparkContext ctx(pool, nmpExec(8, true, true));
    for (const auto &[name, basic] : sparkOperatorTable()) {
        auto result = ctx.lower(name, pair.s, &pair.r);
        EXPECT_EQ(result.basicOp, basic) << name;
        EXPECT_EQ(result.sparkOp, name);
    }
}

// The lowering layer must be a pure relabeling: every Lowered op's
// functional results equal the direct engine/ops.hh reference on the
// identical (seed-regenerated) input.
TEST(Spark, LoweredResultsMatchDirectOpsReference)
{
    WorkloadConfig wl;
    wl.tuples = 1024;
    wl.seed = 11;
    for (const ExecConfig &cfg :
         {mondrianExec(8, true), nmpExec(8, false, false),
          nmpExec(8, true, true)}) {
        // Two pools, same geometry and seed: identical relations, one
        // consumed by the lowering, one by the reference.
        MemoryPool lowered_pool(sparkGeo());
        MemoryPool ref_pool(sparkGeo());
        WorkloadGenerator lowered_gen(wl);
        WorkloadGenerator ref_gen(wl);
        SparkContext ctx(lowered_pool, cfg);

        {
            Relation a = lowered_gen.makeUniform(lowered_pool, wl.tuples);
            Relation b = ref_gen.makeUniform(ref_pool, wl.tuples);
            auto lowered = ctx.filter(a, 1);
            auto ref = runScan(ref_pool, cfg, b, 1);
            EXPECT_EQ(lowered.exec.scanMatches, ref.scanMatches);
        }
        {
            Relation a = lowered_gen.makeUniform(lowered_pool, wl.tuples);
            Relation b = ref_gen.makeUniform(ref_pool, wl.tuples);
            auto lowered = ctx.sortByKey(a);
            auto ref = runSort(ref_pool, cfg, b);
            EXPECT_EQ(lowered.exec.output.gatherAll(lowered_pool),
                      ref.output.gatherAll(ref_pool));
        }
        {
            Relation a = lowered_gen.makeGroupBy(lowered_pool, wl.tuples);
            Relation b = ref_gen.makeGroupBy(ref_pool, wl.tuples);
            auto lowered = ctx.reduceByKey(a);
            auto ref = runGroupBy(ref_pool, cfg, b);
            EXPECT_EQ(lowered.exec.groupCount, ref.groupCount);
            EXPECT_EQ(lowered.exec.aggChecksum, ref.aggChecksum);
        }
        {
            auto a = lowered_gen.makeJoinPair(lowered_pool);
            auto b = ref_gen.makeJoinPair(ref_pool);
            auto lowered = ctx.join(a.r, a.s);
            auto ref = runJoin(ref_pool, cfg, b.r, b.s);
            EXPECT_EQ(lowered.exec.joinMatches, ref.joinMatches);
        }
    }
}

TEST(SparkDeath, UnknownOperatorFatal)
{
    MemoryPool pool(sparkGeo());
    WorkloadConfig wl;
    wl.tuples = 64;
    Relation rel = WorkloadGenerator(wl).makeUniform(pool, 64);
    SparkContext ctx(pool, nmpExec(8, false, false));
    EXPECT_DEATH(ctx.lower("Mystery", rel), "unknown Spark");
}
