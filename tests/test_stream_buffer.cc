/** @file Unit tests for the stream-buffer unit. */

#include <gtest/gtest.h>

#include "core/stream_buffer.hh"

using namespace mondrian;

TEST(StreamBuffer, ProgramSlicesRange)
{
    StreamBufferUnit sb;
    sb.program(0x1000, 256, 4);
    ASSERT_EQ(sb.streams().size(), 4u);
    EXPECT_EQ(sb.streams()[0].start, 0x1000u);
    EXPECT_EQ(sb.streams()[3].start, 0x1000u + 3 * 256);
    EXPECT_EQ(sb.activeStreams(), 4u);
    EXPECT_FALSE(sb.allDone());
}

TEST(StreamBuffer, PopAdvancesHead)
{
    StreamBufferUnit sb;
    sb.program(0, 64, 2);
    EXPECT_EQ(sb.pop(0, 16), 0u);
    EXPECT_EQ(sb.pop(0, 16), 16u);
    EXPECT_EQ(sb.headAddr(0), 32u);
    EXPECT_EQ(sb.headAddr(1), 64u);
    EXPECT_EQ(sb.bytesConsumed(), 32u);
}

TEST(StreamBuffer, CompletionTracking)
{
    StreamBufferUnit sb;
    sb.program(0, 32, 2);
    sb.pop(0, 32);
    EXPECT_EQ(sb.activeStreams(), 1u);
    sb.pop(1, 16);
    sb.pop(1, 16);
    EXPECT_TRUE(sb.allDone());
}

TEST(StreamBuffer, FetchDepthTracksActiveStreams)
{
    StreamBufferUnit sb(StreamBufferConfig{8, 384, 256});
    sb.program(0, 128, 6);
    EXPECT_EQ(sb.fetchDepth(), 6u);
    sb.pop(0, 128);
    EXPECT_EQ(sb.fetchDepth(), 5u);
}

TEST(StreamBuffer, ExplicitStreams)
{
    StreamBufferUnit sb;
    std::vector<Stream> runs(3);
    runs[0] = Stream{0, 100, 0};
    runs[1] = Stream{1000, 50, 0};
    runs[2] = Stream{5000, 10, 10}; // already done
    sb.programStreams(runs);
    EXPECT_EQ(sb.activeStreams(), 2u);
    EXPECT_TRUE(sb.streams()[2].done());
}

TEST(StreamBufferDeath, TooManyStreamsFatal)
{
    StreamBufferUnit sb(StreamBufferConfig{4, 384, 256});
    EXPECT_DEATH(sb.program(0, 64, 5), "buffers");
}

TEST(StreamBufferDeath, PopPastEndPanics)
{
    StreamBufferUnit sb;
    sb.program(0, 16, 1);
    sb.pop(0, 16);
    EXPECT_DEATH(sb.pop(0, 16), "assert");
}
