/** @file Unit tests for kernel traces and the trace recorder. */

#include <gtest/gtest.h>

#include "core/trace.hh"
#include "engine/trace_recorder.hh"

using namespace mondrian;

TEST(KernelTrace, ComputeCoalesces)
{
    KernelTrace t;
    t.addCompute(5);
    t.addCompute(7);
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(t.ops()[0].value, 12u);
}

TEST(KernelTrace, ComputeDoesNotCoalesceAcrossMemOps)
{
    KernelTrace t;
    t.addCompute(5);
    t.add(TraceOp::load(0, 64));
    t.addCompute(7);
    EXPECT_EQ(t.size(), 3u);
}

TEST(KernelTrace, HugeComputeSplits)
{
    KernelTrace t;
    t.addCompute(0x1'0000'0005ull);
    auto s = t.summarize();
    EXPECT_EQ(s.computeCycles, 0x1'0000'0005ull);
}

TEST(KernelTrace, SummaryCountsEverything)
{
    KernelTrace t;
    t.addCompute(10);
    t.add(TraceOp::load(0, 64));
    t.add(TraceOp::loadBlocking(64, 8));
    t.add(TraceOp::store(128, 16));
    t.add(TraceOp::permutableStore(256, 16));
    t.add(TraceOp::streamRead(512, 256));
    t.add(TraceOp::fence());
    auto s = t.summarize();
    EXPECT_EQ(s.computeCycles, 10u);
    EXPECT_EQ(s.loads, 2u);
    EXPECT_EQ(s.loadBytes, 72u);
    EXPECT_EQ(s.stores, 2u);
    EXPECT_EQ(s.permutableStores, 1u);
    EXPECT_EQ(s.storeBytes, 32u);
    EXPECT_EQ(s.streamReads, 1u);
    EXPECT_EQ(s.streamBytes, 256u);
    EXPECT_EQ(s.fences, 1u);
}

TEST(TraceRecorder, FractionalCyclesAccumulate)
{
    TraceRecorder rec;
    for (int i = 0; i < 10; ++i)
        rec.compute(0.25);
    EXPECT_EQ(rec.trace().summarize().computeCycles, 2u); // floor(2.5)
    rec.compute(0.5);
    EXPECT_EQ(rec.trace().summarize().computeCycles, 3u);
}

TEST(TraceRecorder, ReadRangeChunks)
{
    TraceRecorder rec;
    rec.readRange(0, 200, 64, false);
    auto s = rec.trace().summarize();
    EXPECT_EQ(s.loads, 4u); // 64+64+64+8
    EXPECT_EQ(s.loadBytes, 200u);
}

TEST(TraceRecorder, WriteRangeChunks)
{
    TraceRecorder rec;
    rec.writeRange(0, 128, 256);
    auto s = rec.trace().summarize();
    EXPECT_EQ(s.stores, 1u);
    EXPECT_EQ(s.storeBytes, 128u);
}

TEST(TraceRecorder, ScanEmitInterleaves)
{
    TraceRecorder rec;
    int tuples_seen = 0;
    scanEmit(rec, 0, 10, 16, 64, true,
             [&](std::uint64_t) { ++tuples_seen; });
    EXPECT_EQ(tuples_seen, 10);
    auto s = rec.trace().summarize();
    EXPECT_EQ(s.streamReads, 3u); // 4+4+2 tuples
    EXPECT_EQ(s.streamBytes, 160u);
}
