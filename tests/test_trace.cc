/** @file Unit tests for kernel traces and the trace recorder. */

#include <gtest/gtest.h>

#include "core/trace.hh"
#include "engine/trace_recorder.hh"

using namespace mondrian;

TEST(KernelTrace, ComputeCoalesces)
{
    KernelTrace t;
    t.addCompute(5);
    t.addCompute(7);
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(t.ops()[0].value, 12u);
}

TEST(KernelTrace, ComputeDoesNotCoalesceAcrossMemOps)
{
    KernelTrace t;
    t.addCompute(5);
    t.add(TraceOp::load(0, 64));
    t.addCompute(7);
    EXPECT_EQ(t.size(), 3u);
}

TEST(KernelTrace, HugeComputeSplits)
{
    KernelTrace t;
    t.addCompute(0x1'0000'0005ull);
    auto s = t.summarize();
    EXPECT_EQ(s.computeCycles, 0x1'0000'0005ull);
}

TEST(KernelTrace, SummaryCountsEverything)
{
    KernelTrace t;
    t.addCompute(10);
    t.add(TraceOp::load(0, 64));
    t.add(TraceOp::loadBlocking(64, 8));
    t.add(TraceOp::store(128, 16));
    t.add(TraceOp::permutableStore(256, 16));
    t.add(TraceOp::streamRead(512, 256));
    t.add(TraceOp::fence());
    auto s = t.summarize();
    EXPECT_EQ(s.computeCycles, 10u);
    EXPECT_EQ(s.loads, 2u);
    EXPECT_EQ(s.loadBytes, 72u);
    EXPECT_EQ(s.stores, 2u);
    EXPECT_EQ(s.permutableStores, 1u);
    EXPECT_EQ(s.storeBytes, 32u);
    EXPECT_EQ(s.streamReads, 1u);
    EXPECT_EQ(s.streamBytes, 256u);
    EXPECT_EQ(s.fences, 1u);
}

TEST(TraceRecorder, FractionalCyclesAccumulate)
{
    TraceRecorder rec;
    for (int i = 0; i < 10; ++i)
        rec.compute(0.25);
    EXPECT_EQ(rec.trace().summarize().computeCycles, 2u); // floor(2.5)
    rec.compute(0.5);
    EXPECT_EQ(rec.trace().summarize().computeCycles, 3u);
}

TEST(TraceRecorder, ReadRangeChunks)
{
    TraceRecorder rec;
    rec.readRange(0, 200, 64, false);
    auto s = rec.trace().summarize();
    EXPECT_EQ(s.loads, 4u); // 64+64+64+8
    EXPECT_EQ(s.loadBytes, 200u);
}

// --- Run-length encoding: sequential sweeps must be recorded compactly
// and expand to exactly the per-chunk op sequence they replace. ---

TEST(TraceRle, ReadRangeEmitsOneRunPlusTail)
{
    TraceRecorder rec;
    rec.readRange(0x1000, 64 * 100 + 8, 64, false);
    const auto &ops = rec.trace().ops();
    ASSERT_EQ(ops.size(), 2u);
    EXPECT_EQ(ops[0].kind, TraceOpKind::kLoadRun);
    EXPECT_EQ(ops[0].addr, 0x1000u);
    EXPECT_EQ(ops[0].value, 64u);
    EXPECT_EQ(ops[0].count, 100u);
    EXPECT_EQ(ops[1].kind, TraceOpKind::kLoad);
    EXPECT_EQ(ops[1].value, 8u);

    auto s = rec.trace().summarize();
    EXPECT_EQ(s.loads, 101u);
    EXPECT_EQ(s.loadBytes, 64u * 100 + 8);
}

TEST(TraceRle, WriteRangeEmitsStoreRun)
{
    TraceRecorder rec;
    rec.writeRange(0, 256 * 10, 256);
    const auto &ops = rec.trace().ops();
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].kind, TraceOpKind::kStoreRun);
    EXPECT_EQ(ops[0].count, 10u);
    EXPECT_EQ(rec.trace().summarize().stores, 10u);
}

TEST(TraceRle, ExpansionMatchesRange)
{
    TraceRecorder rle, plain;
    rle.readRange(0, 64 * 7 + 16, 64, true);
    // Reference: the pre-RLE per-chunk emission.
    for (std::uint64_t off = 0; off < 64 * 7; off += 64)
        plain.streamRead(off, 64);
    plain.streamRead(64 * 7, 16);
    EXPECT_EQ(rle.trace().expanded(), plain.trace().ops());
    EXPECT_EQ(rle.trace().expandedSize(), plain.trace().size());
}

TEST(TraceRle, ScanFixedExpandsToScanEmit)
{
    // scanFixed must produce (after expansion) exactly what scanEmit with
    // a fixed per-tuple compute produces — including the fractional carry
    // pattern of a non-integral cost.
    for (double cost : {2.0, 1.25, 0.3, 7.0}) {
        TraceRecorder rle, plain;
        rle.scanFixed(0x2000, 1000, 16, 64, false, cost);
        scanEmit(plain, 0x2000, 1000, 16, 64, false,
                 [&](std::uint64_t) { plain.compute(cost); });
        EXPECT_EQ(rle.trace().expanded(), plain.trace().ops())
            << "cost " << cost;
        // And the RLE form must actually be compact for uniform costs.
        EXPECT_LT(rle.trace().size(), plain.trace().size());
    }
}

TEST(TraceRle, ScanFixedCarryContinuesAcrossCalls)
{
    // The fractional-cycle carry must continue across scanFixed and
    // compute() exactly as it would across scanEmit and compute().
    TraceRecorder rle, plain;
    rle.compute(0.7);
    rle.scanFixed(0, 10, 16, 64, false, 0.6);
    rle.store(0, 8);
    rle.compute(0.7);
    plain.compute(0.7);
    scanEmit(plain, 0, 10, 16, 64, false,
             [&](std::uint64_t) { plain.compute(0.6); });
    plain.store(0, 8);
    plain.compute(0.7);
    EXPECT_EQ(rle.trace().expanded(), plain.trace().ops());
}

TEST(TraceRecorder, WriteRangeChunks)
{
    TraceRecorder rec;
    rec.writeRange(0, 128, 256);
    auto s = rec.trace().summarize();
    EXPECT_EQ(s.stores, 1u);
    EXPECT_EQ(s.storeBytes, 128u);
}

TEST(TraceRecorder, ScanEmitInterleaves)
{
    TraceRecorder rec;
    int tuples_seen = 0;
    scanEmit(rec, 0, 10, 16, 64, true,
             [&](std::uint64_t) { ++tuples_seen; });
    EXPECT_EQ(tuples_seen, 10);
    auto s = rec.trace().summarize();
    EXPECT_EQ(s.streamReads, 3u); // 4+4+2 tuples
    EXPECT_EQ(s.streamBytes, 160u);
}
