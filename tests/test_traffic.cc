/** @file Open-loop traffic: specs, arrivals, served metrics, oracles. */

#include <gtest/gtest.h>

#include "common/json.hh"
#include "sim/stats.hh"
#include "system/campaign.hh"
#include "system/report.hh"
#include "system/report_model.hh"
#include "system/runner.hh"
#include "system/traffic.hh"

#include <string>

using namespace mondrian;

namespace {

WorkloadConfig
smallWorkload()
{
    WorkloadConfig wl;
    wl.tuples = 1u << 10;
    wl.seed = 7;
    return wl;
}

TrafficSpec
parseOrDie(const std::string &spec)
{
    TrafficSpec t;
    std::string err;
    EXPECT_TRUE(parseTrafficSpec(spec, t, err)) << spec << ": " << err;
    EXPECT_EQ(validateTrafficSpec(t), "") << spec;
    return t;
}

} // namespace

TEST(TrafficSpec, ParseAndCanonicalName)
{
    TrafficSpec none = parseOrDie("none");
    EXPECT_TRUE(none.degenerate());
    EXPECT_EQ(none.name(), "none");

    TrafficSpec t = parseOrDie("poisson,lambda=2000,queries=32,seed=9");
    EXPECT_FALSE(t.degenerate());
    EXPECT_EQ(t.process, ArrivalProcess::kPoisson);
    EXPECT_DOUBLE_EQ(t.lambdaQps, 2000.0);
    EXPECT_EQ(t.queries, 32u);
    EXPECT_EQ(t.seed, 9u);
    EXPECT_EQ(t.name(), "poisson-l2000-q32-s9");

    TrafficSpec f =
        parseOrDie("fixed,lambda=500,queries=8,warmup=2,inflight=3");
    EXPECT_EQ(f.process, ArrivalProcess::kFixed);
    EXPECT_EQ(f.warmup, 2u);
    EXPECT_EQ(f.maxInFlight, 3u);
    EXPECT_EQ(f.name(), "fixed-l500-q8-w2-i3-s1");

    // The canonical name re-parses to the same spec (name is the resume
    // identity, so this round-trip is load-bearing).
    TrafficSpec f2 = parseOrDie(f.name().substr(0, 0) +
                                "fixed,lambda=500,queries=8,warmup=2,"
                                "inflight=3,seed=1");
    EXPECT_EQ(f2.name(), f.name());
}

TEST(TrafficSpec, ParseMixWithWeights)
{
    TrafficSpec t = parseOrDie(
        "poisson,lambda=1000,queries=16,mix=scan:3+join:1,mix-zipf=0.5");
    ASSERT_EQ(t.mix.size(), 2u);
    EXPECT_EQ(t.mix[0].scenario.name, "scan");
    EXPECT_DOUBLE_EQ(t.mix[0].weight, 3.0);
    EXPECT_EQ(t.mix[1].scenario.name, "join");
    EXPECT_DOUBLE_EQ(t.mix[1].weight, 1.0);
    EXPECT_DOUBLE_EQ(t.mixZipfTheta, 0.5);
    EXPECT_EQ(t.name(),
              "poisson-l1000-q16-s1-mix=scan:3+join:1-mz0.5");
}

TEST(TrafficSpec, RejectsMalformedSpecs)
{
    // parseTrafficSpec validates internally, so every malformed spec —
    // lexical or semantic — is rejected at parse time.
    TrafficSpec t;
    std::string err;
    EXPECT_FALSE(parseTrafficSpec("", t, err));
    EXPECT_FALSE(parseTrafficSpec("bogus", t, err));
    EXPECT_FALSE(parseTrafficSpec("lambda=abc", t, err));
    EXPECT_FALSE(parseTrafficSpec("mix=scan:0", t, err)) << err;
    EXPECT_FALSE(parseTrafficSpec("lambda=1000,queries=0", t, err));
    EXPECT_FALSE(parseTrafficSpec("lambda=1000,queries=4,warmup=4", t, err));
    EXPECT_FALSE(parseTrafficSpec("lambda=-5", t, err));
    // A spec that smuggles served knobs next to lambda=0 would silently
    // ignore them — rejected rather than misread.
    EXPECT_FALSE(parseTrafficSpec("lambda=0,inflight=4", t, err));

    // validateTrafficSpec also works standalone on constructed specs.
    TrafficSpec bad;
    bad.lambdaQps = 1000.0;
    bad.queries = 4;
    bad.warmup = 4;
    EXPECT_NE(validateTrafficSpec(bad), "");
    bad = TrafficSpec{};
    bad.lambdaQps = 1000.0;
    bad.mixZipfTheta = 2.5;
    EXPECT_NE(validateTrafficSpec(bad), "");
}

TEST(Arrivals, DeterministicAndSeedSensitive)
{
    TrafficSpec t = parseOrDie("poisson,lambda=5000,queries=64,seed=3");
    std::vector<Arrival> a = generateArrivals(t);
    std::vector<Arrival> b = generateArrivals(t);
    ASSERT_EQ(a.size(), 64u);
    ASSERT_EQ(b.size(), 64u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].at, b[i].at) << i;
        EXPECT_EQ(a[i].type, b[i].type) << i;
    }
    // Arrival ticks are non-decreasing (gaps are non-negative).
    for (std::size_t i = 1; i < a.size(); ++i)
        EXPECT_GE(a[i].at, a[i - 1].at) << i;

    TrafficSpec t2 = t;
    t2.seed = 4;
    std::vector<Arrival> c = generateArrivals(t2);
    bool any_differs = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        any_differs = any_differs || a[i].at != c[i].at;
    EXPECT_TRUE(any_differs);
}

TEST(Arrivals, FixedProcessHasExactGaps)
{
    // lambda = 1e6 QPS -> gap = 1 us = 1e6 ps exactly. Every arrival —
    // the first included — comes one gap after its predecessor, the
    // same gap-first draw order the Poisson process uses.
    TrafficSpec t = parseOrDie("fixed,lambda=1000000,queries=8");
    std::vector<Arrival> a = generateArrivals(t);
    ASSERT_EQ(a.size(), 8u);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].at, (i + 1) * 1000000u) << i;
}

TEST(Arrivals, DegenerateIsOneArrivalAtZero)
{
    std::vector<Arrival> a = generateArrivals(TrafficSpec{});
    ASSERT_EQ(a.size(), 1u);
    EXPECT_EQ(a[0].at, 0u);
    EXPECT_EQ(a[0].type, 0u);
}

TEST(Arrivals, MixZipfSkewsTowardFirstEntry)
{
    // Equal declared weights, strong zipf skew: entry 0 must dominate.
    TrafficSpec t = parseOrDie(
        "poisson,lambda=1000,queries=512,mix=scan:1+join:1,mix-zipf=1.5");
    std::vector<Arrival> a = generateArrivals(t);
    std::size_t first = 0;
    for (const Arrival &ar : a)
        first += ar.type == 0 ? 1 : 0;
    EXPECT_GT(first, a.size() / 2);
    EXPECT_LT(first, a.size()); // but not exclusively entry 0
}

TEST(LatencySampleStats, NearestRankPercentiles)
{
    // Hand-computed nearest-rank fixture: N = 10 samples 10..100.
    LatencySample s;
    for (Tick v : {30u, 10u, 50u, 20u, 40u, 70u, 60u, 90u, 80u, 100u})
        s.record(v);
    EXPECT_EQ(s.count(), 10u);
    // rank = ceil(p/100 * 10): p50 -> 5th (50), p95 -> 10th (100),
    // p99 -> 10th (100), p10 -> 1st (10).
    EXPECT_EQ(s.percentile(50.0), 50u);
    EXPECT_EQ(s.percentile(95.0), 100u);
    EXPECT_EQ(s.percentile(99.0), 100u);
    EXPECT_EQ(s.percentile(10.0), 10u);
    EXPECT_EQ(s.max(), 100u);
    EXPECT_DOUBLE_EQ(s.mean(), 55.0);

    LatencySample one;
    one.record(42);
    EXPECT_EQ(one.percentile(50.0), 42u);
    EXPECT_EQ(one.percentile(99.0), 42u);
}

TEST(ServedRunner, DegenerateTrafficMatchesRunnerByteForByte)
{
    // THE correctness oracle: a single arrival at tick 0 through the
    // full served plumbing must reproduce the single-query Runner's
    // result exactly — same simulated machine, same event order, same
    // JSON bytes.
    Scenario sessions;
    std::string err;
    ASSERT_TRUE(scenarioFromSpec("sessions", sessions, err)) << err;

    for (SystemKind k : {SystemKind::kCpu, SystemKind::kMondrian}) {
        Runner runner(smallWorkload());
        RunResult direct = runner.run(makeSystem(k), sessions);

        ServedRunner served(smallWorkload(), TrafficSpec{});
        RunResult via_traffic = served.run(makeSystem(k), sessions);

        EXPECT_EQ(runResultJson(direct), runResultJson(via_traffic))
            << systemKindName(k);
        EXPECT_FALSE(via_traffic.served.valid);
    }
}

TEST(ServedRunner, OpenLoopAccountingAndDeterminism)
{
    Scenario scan;
    std::string err;
    ASSERT_TRUE(scenarioFromSpec("scan", scan, err)) << err;
    TrafficSpec t = parseOrDie("poisson,lambda=100000,queries=12,seed=5");

    ServedRunner served(smallWorkload(), t);
    RunResult a = served.run(makeSystem(SystemKind::kMondrian), scan);
    ASSERT_TRUE(a.served.valid);
    EXPECT_EQ(a.served.offered, 12u);
    EXPECT_EQ(a.served.admitted, 12u);
    EXPECT_EQ(a.served.rejected, 0u);
    EXPECT_EQ(a.served.completed, 12u);
    EXPECT_EQ(a.served.measuredCompleted, 12u);
    EXPECT_GT(a.served.sustainedQps, 0.0);
    EXPECT_GT(a.served.latencyP50, 0u);
    EXPECT_LE(a.served.latencyP50, a.served.latencyP95);
    EXPECT_LE(a.served.latencyP95, a.served.latencyP99);
    EXPECT_LE(a.served.latencyP99, a.served.latencyMax);
    EXPECT_GT(a.served.energyPerQueryJ, 0.0);

    // A served run is a pure function of (system, workload, traffic).
    ServedRunner served2(smallWorkload(), t);
    RunResult b = served2.run(makeSystem(SystemKind::kMondrian), scan);
    EXPECT_EQ(runResultJson(a), runResultJson(b));
}

TEST(ServedRunner, AdmissionCapRejectsAndBalances)
{
    Scenario join;
    std::string err;
    ASSERT_TRUE(scenarioFromSpec("join", join, err)) << err;
    // Absurdly high arrival rate + cap 1: all queries arrive while the
    // first is still running, so all but the admitted few are rejected.
    TrafficSpec t = parseOrDie(
        "poisson,lambda=100000000,queries=16,inflight=1,seed=2");

    ServedRunner served(smallWorkload(), t);
    RunResult r = served.run(makeSystem(SystemKind::kMondrian), join);
    ASSERT_TRUE(r.served.valid);
    EXPECT_EQ(r.served.offered, 16u);
    EXPECT_GT(r.served.rejected, 0u);
    EXPECT_EQ(r.served.admitted + r.served.rejected, r.served.offered);
    EXPECT_EQ(r.served.completed, r.served.admitted);
}

TEST(ServedRunner, WarmupExcludesEarlyQueries)
{
    Scenario scan;
    std::string err;
    ASSERT_TRUE(scenarioFromSpec("scan", scan, err)) << err;
    TrafficSpec t =
        parseOrDie("poisson,lambda=50000,queries=10,warmup=4,seed=1");

    ServedRunner served(smallWorkload(), t);
    RunResult r = served.run(makeSystem(SystemKind::kMondrian), scan);
    ASSERT_TRUE(r.served.valid);
    EXPECT_EQ(r.served.completed, 10u);
    EXPECT_EQ(r.served.measuredCompleted, 6u);
}

TEST(ServedReport, V4RoundTripThroughModelAndResume)
{
    CampaignGrid grid;
    grid.systems = {SystemKind::kCpu, SystemKind::kMondrian};
    grid.scenarios = {degenerateScenario(OpKind::kScan)};
    grid.log2Tuples = {8};
    grid.seeds = {42};
    grid.traffics = {parseOrDie("poisson,lambda=200000,queries=6")};

    CampaignRunner campaign(grid);
    CampaignReport report = campaign.run(1);
    std::string json = campaignReportJson(report);
    EXPECT_NE(json.find("\"schema\": \"mondrian-campaign-v4\""),
              std::string::npos);
    EXPECT_NE(json.find("\"traffics\""), std::string::npos);
    EXPECT_NE(json.find("\"served\""), std::string::npos);

    // Model round-trip: traffic labels and served metrics survive.
    ReportModel m;
    std::string err;
    ASSERT_TRUE(loadReportModel(json, m, err)) << err;
    EXPECT_EQ(m.schemaVersion, 4);
    ASSERT_EQ(m.runs.size(), 2u);
    ASSERT_EQ(m.traffics.size(), 1u);
    EXPECT_EQ(m.traffics[0], "poisson-l200000-q6-s1");
    for (const ReportRun &r : m.runs) {
        EXPECT_EQ(r.traffic, m.traffics[0]);
        EXPECT_TRUE(r.result.served.valid);
        EXPECT_EQ(r.result.served.offered, 6u);
        EXPECT_NE(r.pointKey().find(m.traffics[0]), std::string::npos);
    }

    // Resume round-trip: a v4 report fully caches its own grid.
    ResumeCache cache;
    ASSERT_TRUE(cache.load(json, err)) << err;
    EXPECT_EQ(cache.size(), 2u);
    CampaignRunner resumed(grid);
    resumed.setResume(&cache);
    CampaignReport again = resumed.run(1);
    EXPECT_EQ(again.cachedRuns, 2u);
}

TEST(ServedReport, DegenerateGridStaysV2)
{
    // A grid whose traffic axis is only the degenerate spec must write
    // the historical schema — no "traffic" labels, no served objects.
    CampaignGrid grid;
    grid.systems = {SystemKind::kCpu, SystemKind::kMondrian};
    grid.scenarios = {degenerateScenario(OpKind::kScan)};
    grid.log2Tuples = {8};
    grid.seeds = {42};

    CampaignRunner campaign(grid);
    std::string json = campaignReportJson(campaign.run(1));
    EXPECT_NE(json.find("\"schema\": \"mondrian-campaign-v2\""),
              std::string::npos);
    EXPECT_EQ(json.find("\"traffic\""), std::string::npos);
    EXPECT_EQ(json.find("\"served\""), std::string::npos);
}
