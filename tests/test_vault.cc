/** @file Unit and property tests for the vault controller. */

#include <gtest/gtest.h>

#include <vector>

#include "common/intmath.hh"
#include "common/random.hh"
#include "dram/vault.hh"
#include "sim/event_queue.hh"

using namespace mondrian;

namespace {

MemGeometry
vaultGeo()
{
    MemGeometry g;
    g.numStacks = 1;
    g.vaultsPerStack = 2;
    g.banksPerVault = 4;
    g.rowBytes = 256;
    g.vaultBytes = 256 * kKiB;
    return g;
}

struct VaultFixture : public ::testing::Test
{
    VaultFixture() : map(vaultGeo()), vault(eq, map, 0, DramTiming{}, 16) {}

    void
    access(Addr addr, std::uint32_t size, bool write)
    {
        MemRequest r;
        r.addr = addr;
        r.size = size;
        r.isWrite = write;
        r.onComplete = [this](Tick) { ++completed; };
        vault.enqueue(std::move(r));
    }

    EventQueue eq;
    AddressMap map;
    VaultController vault;
    unsigned completed = 0;
};

} // namespace

TEST_F(VaultFixture, SingleReadCompletes)
{
    access(0, 64, false);
    eq.run();
    EXPECT_EQ(completed, 1u);
    EXPECT_EQ(vault.stats().reads, 1u);
    EXPECT_EQ(vault.stats().bytesRead, 64u);
    EXPECT_EQ(vault.stats().rowActivations, 1u);
}

TEST_F(VaultFixture, SequentialStreamActivatesEachRowOnce)
{
    // Read 16 KiB sequentially in row-sized chunks: one activation per
    // 256 B row, no conflicts.
    const unsigned rows = 64;
    for (unsigned i = 0; i < rows; ++i)
        access(Addr{i} * 256, 256, false);
    eq.run();
    EXPECT_EQ(vault.stats().rowActivations, rows);
    EXPECT_EQ(vault.stats().rowHits, 0u);
    EXPECT_EQ(completed, rows);
}

TEST_F(VaultFixture, SequentialBandwidthApproachesPeak)
{
    const unsigned rows = 256;
    for (unsigned i = 0; i < rows; ++i)
        access(Addr{i} * 256, 256, false);
    Tick end = eq.run();
    double gbps = bytesPerTickToGBps(rows * 256.0, end);
    EXPECT_GT(gbps, 6.0); // 8 GB/s peak minus activation overheads
    EXPECT_LE(gbps, 8.01);
}

TEST_F(VaultFixture, RandomSmallAccessesThrashRows)
{
    Random rng(11);
    const unsigned n = 256;
    for (unsigned i = 0; i < n; ++i) {
        Addr a = roundDown(rng.nextBounded(256 * kKiB - 16), 16);
        access(a, 16, false);
    }
    eq.run();
    // Nearly every access activates a row (open rows rarely re-hit).
    EXPECT_GT(vault.stats().rowActivations, n * 3 / 4);
}

TEST_F(VaultFixture, FrFcfsPrefersOpenRows)
{
    // A narrow scheduling window forces queueing; FR-FCFS should batch
    // same-row requests (row hits) instead of ping-ponging two rows that
    // share a bank.
    VaultController narrow(eq, map, 0, DramTiming{}, 2);
    unsigned done = 0;
    for (int i = 0; i < 8; ++i) {
        for (Addr base : {Addr{0}, Addr{8192}}) { // same bank, rows 0 and 8
            MemRequest r;
            r.addr = base + static_cast<Addr>(i) * 16;
            r.size = 16;
            r.isWrite = false;
            r.onComplete = [&done](Tick) { ++done; };
            narrow.enqueue(std::move(r));
        }
    }
    eq.run();
    EXPECT_EQ(done, 16u);
    EXPECT_GE(narrow.stats().rowHits, 9u); // 16 reqs, 2 rows: >= 9 batched hits
}

TEST_F(VaultFixture, AppendEngineCoalescesToRows)
{
    vault.armPermutable(PermutableRegion{0, 8 * kKiB, 16});
    // 256 appends of 16 B = 4 KiB = 16 rows; the append engine must
    // activate each row exactly once and never more.
    for (unsigned i = 0; i < 256; ++i)
        access(Addr{4 * kKiB} + (i % 64) * 16, 16, true); // scattered addrs
    eq.run();
    EXPECT_EQ(vault.permutableCursor(), 256u * 16);
    std::uint64_t appended = vault.disarmPermutable();
    eq.run();
    EXPECT_EQ(appended, 4 * kKiB);
    EXPECT_EQ(vault.stats().permutableWrites, 256u);
    EXPECT_EQ(vault.stats().rowActivations, 16u);
    EXPECT_EQ(completed, 256u); // fast-acked
}

TEST_F(VaultFixture, AppendIgnoresSourceAddresses)
{
    vault.armPermutable(PermutableRegion{0, 8 * kKiB, 16});
    Random rng(3);
    for (unsigned i = 0; i < 64; ++i)
        access(roundDown(rng.nextBounded(8 * kKiB - 16), 16), 16, true);
    eq.run();
    EXPECT_EQ(vault.permutableCursor(), 64u * 16);
    vault.disarmPermutable();
    eq.run();
    // 1 KiB appended = 4 rows exactly.
    EXPECT_EQ(vault.stats().rowActivations, 4u);
}

TEST_F(VaultFixture, WritesOutsideArmedRegionUntouched)
{
    vault.armPermutable(PermutableRegion{0, 4 * kKiB, 16});
    access(64 * kKiB, 16, true); // outside the region
    eq.run();
    EXPECT_EQ(vault.stats().permutableWrites, 0u);
    EXPECT_EQ(vault.permutableCursor(), 0u);
    vault.disarmPermutable();
}

TEST_F(VaultFixture, DisarmFlushesPartialRow)
{
    vault.armPermutable(PermutableRegion{0, 4 * kKiB, 16});
    for (unsigned i = 0; i < 3; ++i)
        access(Addr{i} * 16, 16, true);
    eq.run();
    EXPECT_EQ(vault.stats().bytesWritten, 0u); // staged, not yet in DRAM
    vault.disarmPermutable();
    eq.run();
    EXPECT_EQ(vault.stats().bytesWritten, 48u);
}

TEST_F(VaultFixture, RequestsSplitAtRowBoundaries)
{
    access(128, 256, false); // straddles two rows
    eq.run();
    EXPECT_EQ(vault.stats().rowActivations, 2u);
    EXPECT_EQ(completed, 1u);
}

TEST_F(VaultFixture, OutstandingTracksQueue)
{
    for (int i = 0; i < 4; ++i)
        access(Addr(i) * 4096, 16, false);
    EXPECT_GT(vault.outstanding(), 0u);
    eq.run();
    EXPECT_EQ(vault.outstanding(), 0u);
}

TEST(VaultDeath, AppendOverflowFatal)
{
    EventQueue eq;
    AddressMap map(vaultGeo());
    VaultController vault(eq, map, 0, DramTiming{}, 16);
    vault.armPermutable(PermutableRegion{0, 32, 16});
    MemRequest r;
    r.addr = 0;
    r.size = 16;
    r.isWrite = true;
    vault.enqueue(MemRequest{0, 16, true, 0, 0, nullptr});
    vault.enqueue(MemRequest{0, 16, true, 0, 0, nullptr});
    EXPECT_DEATH(vault.enqueue(MemRequest{0, 16, true, 0, 0, nullptr}),
                 "overflow");
}

TEST(VaultDeath, WrongVaultPanics)
{
    EventQueue eq;
    AddressMap map(vaultGeo());
    VaultController vault(eq, map, 0, DramTiming{}, 16);
    EXPECT_DEATH(vault.enqueue(MemRequest{256 * kKiB, 16, false, 0, 0, nullptr}),
                 "assert");
}
