/**
 * @file
 * mondrian_campaign: CLI driver for parallel simulation campaigns.
 *
 * Expands a declarative design-space grid — {system x scenario x scale x
 * seed x geometry x exec-override x zipf-theta x traffic} — into
 * independent runs,
 * executes them across hardware threads, and writes a deterministic JSON
 * report (the artifact CI archives on every push). The scenario axis
 * holds whole analytics pipelines: single ops (scan/sort/groupby/join),
 * named presets (sessions) or ">"-joined stage chains.
 *
 * Examples:
 *   mondrian_campaign --smoke --out smoke.json
 *   mondrian_campaign --systems cpu,nmp,mondrian --ops join,groupby \
 *       --log2-tuples 12,14 --seeds 42,43 --jobs 8 --out sweep.json
 *   mondrian_campaign --systems cpu,mondrian --scenario sessions \
 *       --log2-tuples 12 --out sessions.json
 *   mondrian_campaign --systems cpu,mondrian --ops join \
 *       --geometry 4x8,4x16,4x32 --exec-ablation base,radix=9+tlb=16 \
 *       --zipf 0,0.75 --dry-run
 *   mondrian_campaign --systems mondrian --scenario sessions \
 *       --log2-tuples 12 --traffic poisson,lambda=2000,queries=32 \
 *       --out served.json
 *
 * The report for a given grid is byte-identical for any --jobs value;
 * scripts/check_determinism.sh guards that contract in CI.
 */

#include <signal.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/file_io.hh"
#include "common/logging.hh"
#include "net/socket.hh"
#include "system/campaign.hh"
#include "system/coordinator.hh"
#include "system/report.hh"

using namespace mondrian;

namespace {

/** Set by SIGINT/SIGTERM; checked between runs (cooperative abort). */
std::atomic<bool> g_interrupt{false};

// A store from a signal handler is only async-signal-safe when the
// atomic is lock-free; a library-lock implementation could deadlock
// against the very thread the signal interrupted.
static_assert(std::atomic<bool>::is_always_lock_free,
              "signal handler needs a lock-free atomic abort flag");

extern "C" void
interruptHandler(int)
{
    // relaxed: the flag is polled between runs; the pollers' mutex (or
    // the ThreadPool queue lock) provides the ordering for everything
    // the abort path reads afterwards.
    g_interrupt.store(true, std::memory_order_relaxed);
}

void
installSignalHandlers()
{
    struct sigaction sa{};
    sa.sa_handler = interruptHandler;
    ::sigemptyset(&sa.sa_mask);
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
}

void
usage(const char *prog)
{
    std::fprintf(stderr,
        "usage: %s [options]\n"
        "\n"
        "Grid selection:\n"
        "  --smoke                tiny CI grid (3 systems x 2 ops, 2^10 tuples)\n"
        "  --paper                full paper grid (7 systems x 4 ops, 2^15 tuples)\n"
        "  --systems a,b,...      systems: cpu nmp nmp-perm nmp-rand nmp-seq\n"
        "                         mondrian-noperm mondrian (default: all)\n"
        "  --ops a,b,...          operators: scan sort groupby join (default: all);\n"
        "                         shorthand for the degenerate scenarios\n"
        "  --scenario a,b,...     scenario axis; each spec is a single op,\n"
        "                         a preset (sessions) or a '>'-joined stage\n"
        "                         chain, e.g. filter>join>reduceByKey>sortByKey\n"
        "                         (see --list for the grammar)\n"
        "  --log2-tuples a,b,...  scale factors, log2 of |S| (default: 15)\n"
        "  --seeds a,b,...        workload seeds (default: 42)\n"
        "  --geometry a,b,...     memory geometry axis; each spec is\n"
        "                         SxV[xB][:row=N][:vault=SIZE] or 'default',\n"
        "                         e.g. 2x8 8x32 4x16:row=2048 4x16:vault=256KiB\n"
        "  --exec-ablation a,b,.. exec-config ablation axis; each point is\n"
        "                         'base' or '+'-joined knobs radix=N chunk=N\n"
        "                         tlb=N, e.g. base,radix=9,chunk=256+tlb=16\n"
        "  --zipf t1,t2,...       Zipf key-skew axis (default: 0)\n"
        "  --traffic SPEC         open-loop traffic axis point; SPEC is\n"
        "                         'none' (single query, the default) or\n"
        "                         ','-joined items: poisson|fixed,\n"
        "                         lambda=QPS, queries=N, warmup=N,\n"
        "                         inflight=N, seed=N, mix=a:W+b:W,\n"
        "                         mix-zipf=T; e.g.\n"
        "                         'poisson,lambda=2000,queries=64'.\n"
        "                         Repeat the flag for more axis points\n"
        "                         (see docs/cli.md)\n"
        "\n"
        "Execution:\n"
        "  --jobs N               worker threads; 0 = hardware threads (default: 1)\n"
        "  --out PATH             write the JSON report to PATH (default: stdout)\n"
        "  --resume REPORT        reuse results from a prior report (any\n"
        "                         schema, v1-v4): grid points whose\n"
        "                         (config, workload, traffic) hash matches\n"
        "                         are not re-simulated\n"
        "  --dry-run              print the expanded job list (all axes,\n"
        "                         baseline pairing, cache hits; with\n"
        "                         --workers also the shard plan) and exit\n"
        "                         without simulating\n"
        "  --quiet                suppress per-run progress on stderr\n"
        "  --list                 print known systems, ops, scenarios and\n"
        "                         preset geometries, then exit\n"
        "  --help                 this text\n"
        "\n"
        "Distributed execution (docs/distributed.md):\n"
        "  --workers N            shard runs across N worker subprocesses\n"
        "                         with heartbeats, per-job timeouts and\n"
        "                         bounded retries; crashed or hung workers\n"
        "                         are killed and their jobs reassigned\n"
        "                         (0 = off, run in-process; ignores --jobs\n"
        "                         when set; default: 0)\n"
        "  --journal PATH         crash-safe journal: append each completed\n"
        "                         run to PATH as it finishes; an existing\n"
        "                         journal is replayed before running, so a\n"
        "                         killed campaign resumes where it stopped\n"
        "  --job-timeout S        per-attempt wall-clock budget, seconds\n"
        "                         (default: 600)\n"
        "  --heartbeat-timeout S  kill a worker silent for S seconds\n"
        "                         (default: 30)\n"
        "  --retries N            extra attempts before a job is marked\n"
        "                         permanently failed (default: 2)\n"
        "  --fault-inject SPEC    deterministic fault injection for tests\n"
        "                         and CI chaos runs: comma-separated\n"
        "                         kind@index, kind in {crash,hang,corrupt,\n"
        "                         disconnect}; fires on the job's first\n"
        "                         attempt only unless suffixed '!' (every\n"
        "                         attempt), e.g. crash@2,hang@5,corrupt@1\n"
        "\n"
        "Remote workers (TCP; docs/distributed.md):\n"
        "  --listen HOST:PORT     also accept remote --worker-connect\n"
        "                         workers on HOST:PORT (port 0 = kernel-\n"
        "                         assigned); remote workers join the same\n"
        "                         pull-based queue, heartbeats, retries\n"
        "                         and journal as local ones. With\n"
        "                         --workers 0 the campaign is remote-only\n"
        "  --hello-token T        shared secret remote workers must\n"
        "                         present in their hello; mismatches are\n"
        "                         rejected (default: empty)\n"
        "  --worker-cache DIR     worker-side result cache: each worker\n"
        "                         persists finished jobs' exact result\n"
        "                         JSON in DIR and answers re-dispatched\n"
        "                         grid points from it without\n"
        "                         re-simulating (local and remote alike)\n"
        "  --worker-connect H:P   run as a remote worker: dial a --listen\n"
        "                         coordinator and serve jobs over TCP;\n"
        "                         also honors --hello-token,\n"
        "                         --worker-cache and --reconnect N (the\n"
        "                         consecutive drop/redial budget,\n"
        "                         default 3)\n"
        "\n"
        "Exit codes: 0 success; 1 internal error; 2 usage/config error;\n"
        "3 interrupted by SIGINT/SIGTERM (journal flushed, no report);\n"
        "4 completed with permanently failed runs (report written, see\n"
        "its failed_runs array); 5 network setup or handshake failed\n"
        "(--listen bind, --worker-connect dial or rejected hello).\n",
        prog);
}

void
printList()
{
    std::printf("systems:\n");
    for (SystemKind k : allSystemKinds())
        std::printf("  %s\n", systemKindName(k));
    std::printf("\nops (degenerate single-op scenarios):\n");
    for (OpKind op : allOpKinds())
        std::printf("  %s\n", opKindName(op));
    std::printf("\nscenario presets:\n");
    for (const Scenario &sc : scenarioPresets()) {
        std::string stages;
        for (const ScenarioStage &st : sc.stages)
            stages += (stages.empty() ? "" : ">") + st.spark;
        std::printf("  %-10s = %s\n", sc.name.c_str(), stages.c_str());
    }
    std::printf("\nscenario stage tokens (chain with '>'; first stage "
                "runs on a generated\nrelation, later stages consume "
                "their predecessor's output):\n");
    for (const auto &[token, op] : scenarioStageTokens())
        std::printf("  %-16s -> %s\n", token.c_str(), opKindName(op));
    std::printf("\ngeometries (--geometry accepts a csv of specs):\n");
    std::printf("  default            = %s\n",
                geometryName(defaultGeometry()).c_str());
    std::printf("  SxV[xB][:row=N][:vault=SIZE], e.g. 2x8, 8x32, "
                "4x16:row=2048, 4x16:vault=256KiB\n");
    std::printf("\nexec-ablation points (--exec-ablation):\n");
    std::printf("  'base' or '+'-joined knobs radix=N chunk=N tlb=N, "
                "e.g. radix=9+tlb=16\n");
    std::printf("\ntraffic specs (--traffic, repeatable):\n");
    std::printf("  'none' (single query) or ','-joined items:\n");
    std::printf("  poisson|fixed lambda=QPS queries=N warmup=N inflight=N "
                "seed=N\n");
    std::printf("  mix=scenario:W+scenario:W mix-zipf=T, e.g. "
                "poisson,lambda=2000,queries=64\n");
}

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "mondrian_campaign: %s\n", msg.c_str());
    std::exit(2);
}

std::string
argValue(int argc, char **argv, int &i, const char *flag)
{
    if (i + 1 >= argc)
        die(std::string(flag) + " requires a value");
    return argv[++i];
}

std::uint64_t
parseU64(const std::string &s, const char *flag)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0')
        die(std::string(flag) + ": '" + s + "' is not an integer");
    return static_cast<std::uint64_t>(v);
}

double
parseDouble(const std::string &s, const char *flag)
{
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0')
        die(std::string(flag) + ": '" + s + "' is not a number");
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);

    // Worker mode first: `mondrian_campaign --worker <campaign.json>` is
    // the coordinator's subprocess entry point — no banner, no grid
    // flags, just the job-serving loop (docs/distributed.md).
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--worker") != 0)
            continue;
        if (i + 1 >= argc)
            die("--worker requires a campaign.json path");
        double hb = 1.0;
        std::string cache_dir;
        for (int j = 1; j + 1 < argc; ++j) {
            if (std::strcmp(argv[j], "--heartbeat-interval") == 0)
                hb = std::strtod(argv[j + 1], nullptr);
            else if (std::strcmp(argv[j], "--worker-cache") == 0)
                cache_dir = argv[j + 1];
        }
        return runCampaignWorker(argv[i + 1], hb > 0.0 ? hb : 1.0,
                                 cache_dir);
    }

    // Remote-worker mode: `mondrian_campaign --worker-connect HOST:PORT`
    // dials a --listen coordinator and serves jobs over TCP, rejoining
    // after connection drops (docs/distributed.md).
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--worker-connect") != 0)
            continue;
        if (i + 1 >= argc)
            die("--worker-connect requires HOST:PORT");
        ConnectWorkerOptions opt;
        for (int j = 1; j + 1 < argc; ++j) {
            if (std::strcmp(argv[j], "--hello-token") == 0) {
                opt.helloToken = argv[j + 1];
            } else if (std::strcmp(argv[j], "--worker-cache") == 0) {
                opt.cacheDir = argv[j + 1];
            } else if (std::strcmp(argv[j], "--reconnect") == 0) {
                opt.reconnectAttempts = static_cast<unsigned>(
                    parseU64(argv[j + 1], "--reconnect"));
            }
        }
        return runConnectWorker(argv[i + 1], opt);
    }

    // Presets first (regardless of position), so explicit grid flags
    // always override them: "--zipf 0.8 --smoke" keeps the skew.
    CampaignGrid grid = paperGrid();
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke")
            grid = smokeGrid();
        else if (arg == "--paper")
            grid = paperGrid();
    }

    unsigned jobs = 1;
    unsigned workers = 0;
    std::string out_path;
    std::string resume_path;
    std::string journal_path;
    CoordinatorConfig coord_config;
    bool quiet = false;
    bool dry_run = false;
    // --ops and --scenario both populate the scenario axis: the first
    // occurrence replaces the preset default, later occurrences of
    // either flag append — so combining them never silently drops axis
    // values.
    bool scenarios_set = false;
    auto addScenario = [&](Scenario sc, const std::string &spec) {
        if (!scenarios_set) {
            grid.scenarios.clear();
            scenarios_set = true;
        }
        for (const Scenario &s : grid.scenarios)
            if (s.name == sc.name)
                die("duplicate scenario '" + spec + "'");
        grid.scenarios.push_back(std::move(sc));
    };
    // --traffic is repeatable (one spec per occurrence — the spec grammar
    // itself uses ','); the first occurrence replaces the degenerate
    // default axis, later ones append.
    bool traffics_set = false;
    auto addTraffic = [&](TrafficSpec t, const std::string &spec) {
        if (!traffics_set) {
            grid.traffics.clear();
            traffics_set = true;
        }
        for (const TrafficSpec &o : grid.traffics)
            if (o.name() == t.name())
                die("duplicate traffic spec '" + spec + "'");
        grid.traffics.push_back(std::move(t));
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--list") {
            printList();
            return 0;
        } else if (arg == "--smoke" || arg == "--paper") {
            // handled in the preset pass above
        } else if (arg == "--systems") {
            grid.systems.clear();
            for (const auto &name : splitCsv(argValue(argc, argv, i, "--systems"))) {
                SystemKind k;
                if (!systemKindFromName(name, k))
                    die("unknown system '" + name + "'");
                // Duplicate grid values would double-count summary rows.
                if (std::find(grid.systems.begin(), grid.systems.end(), k) !=
                    grid.systems.end())
                    die("duplicate system '" + name + "'");
                grid.systems.push_back(k);
            }
        } else if (arg == "--ops") {
            for (const auto &name : splitCsv(argValue(argc, argv, i, "--ops"))) {
                OpKind op;
                if (!opKindFromName(name, op))
                    die("unknown operator '" + name + "'");
                addScenario(degenerateScenario(op), name);
            }
        } else if (arg == "--scenario" || arg == "--scenarios") {
            for (const auto &spec :
                 splitCsv(argValue(argc, argv, i, "--scenario"))) {
                Scenario sc;
                std::string err;
                if (!scenarioFromSpec(spec, sc, err))
                    die("--scenario: " + err);
                addScenario(std::move(sc), spec);
            }
        } else if (arg == "--log2-tuples") {
            grid.log2Tuples.clear();
            for (const auto &v : splitCsv(argValue(argc, argv, i, "--log2-tuples"))) {
                std::uint64_t l = parseU64(v, "--log2-tuples");
                if (l < 4 || l > 24)
                    die("--log2-tuples values must be in [4, 24]");
                if (std::find(grid.log2Tuples.begin(), grid.log2Tuples.end(),
                              l) != grid.log2Tuples.end())
                    die("duplicate --log2-tuples value '" + v + "'");
                grid.log2Tuples.push_back(static_cast<unsigned>(l));
            }
        } else if (arg == "--seeds") {
            grid.seeds.clear();
            for (const auto &v : splitCsv(argValue(argc, argv, i, "--seeds"))) {
                std::uint64_t s = parseU64(v, "--seeds");
                if (std::find(grid.seeds.begin(), grid.seeds.end(), s) !=
                    grid.seeds.end())
                    die("duplicate seed '" + v + "'");
                grid.seeds.push_back(s);
            }
        } else if (arg == "--geometry") {
            grid.geometries.clear();
            for (const auto &spec : splitCsv(argValue(argc, argv, i, "--geometry"))) {
                MemGeometry geo;
                std::string err;
                if (!parseGeometrySpec(spec, geo, err))
                    die("--geometry '" + spec + "': " + err);
                for (const MemGeometry &g : grid.geometries)
                    if (geometryName(g) == geometryName(geo))
                        die("duplicate geometry '" + spec + "'");
                grid.geometries.push_back(geo);
            }
        } else if (arg == "--exec-ablation") {
            grid.execOverrides.clear();
            for (const auto &spec : splitCsv(argValue(argc, argv, i, "--exec-ablation"))) {
                ExecOverride ov;
                std::string err;
                if (!parseExecOverride(spec, ov, err))
                    die("--exec-ablation '" + spec + "': " + err);
                for (const ExecOverride &o : grid.execOverrides)
                    if (o.name() == ov.name())
                        die("duplicate exec-ablation point '" + spec + "'");
                grid.execOverrides.push_back(ov);
            }
        } else if (arg == "--zipf") {
            grid.zipfThetas.clear();
            for (const auto &v : splitCsv(argValue(argc, argv, i, "--zipf"))) {
                double z = parseDouble(v, "--zipf");
                if (z < 0.0 || z >= 2.0)
                    die("--zipf values must be in [0, 2)");
                if (std::find(grid.zipfThetas.begin(), grid.zipfThetas.end(),
                              z) != grid.zipfThetas.end())
                    die("duplicate --zipf value '" + v + "'");
                grid.zipfThetas.push_back(z);
            }
        } else if (arg == "--traffic") {
            const std::string spec = argValue(argc, argv, i, "--traffic");
            TrafficSpec t;
            std::string err;
            if (!parseTrafficSpec(spec, t, err))
                die("--traffic '" + spec + "': " + err);
            if (std::string verr = validateTrafficSpec(t); !verr.empty())
                die("--traffic '" + spec + "': " + verr);
            addTraffic(std::move(t), spec);
        } else if (arg == "--jobs") {
            std::uint64_t n =
                parseU64(argValue(argc, argv, i, "--jobs"), "--jobs");
            if (n > 1024)
                die("--jobs must be in [0, 1024]");
            jobs = static_cast<unsigned>(n);
        } else if (arg == "--workers") {
            std::uint64_t n =
                parseU64(argValue(argc, argv, i, "--workers"), "--workers");
            if (n > 256)
                die("--workers must be in [0, 256]");
            workers = static_cast<unsigned>(n);
        } else if (arg == "--journal") {
            journal_path = argValue(argc, argv, i, "--journal");
        } else if (arg == "--job-timeout") {
            coord_config.jobTimeoutSec = parseDouble(
                argValue(argc, argv, i, "--job-timeout"), "--job-timeout");
            if (coord_config.jobTimeoutSec <= 0.0)
                die("--job-timeout must be positive");
        } else if (arg == "--heartbeat-timeout") {
            coord_config.heartbeatTimeoutSec =
                parseDouble(argValue(argc, argv, i, "--heartbeat-timeout"),
                            "--heartbeat-timeout");
            if (coord_config.heartbeatTimeoutSec <= 0.0)
                die("--heartbeat-timeout must be positive");
        } else if (arg == "--retries") {
            coord_config.maxRetries = static_cast<unsigned>(parseU64(
                argValue(argc, argv, i, "--retries"), "--retries"));
            if (coord_config.maxRetries > 16)
                die("--retries must be in [0, 16]");
        } else if (arg == "--fault-inject") {
            const std::string spec =
                argValue(argc, argv, i, "--fault-inject");
            std::string err;
            if (!parseFaultInject(spec, coord_config.faults, err))
                die("--fault-inject: " + err);
        } else if (arg == "--listen") {
            coord_config.listenEndpoint =
                argValue(argc, argv, i, "--listen");
            Endpoint ep;
            std::string err;
            if (!parseEndpoint(coord_config.listenEndpoint, ep, err))
                die("--listen: " + err);
        } else if (arg == "--hello-token") {
            coord_config.helloToken =
                argValue(argc, argv, i, "--hello-token");
        } else if (arg == "--worker-cache") {
            coord_config.workerCacheDir =
                argValue(argc, argv, i, "--worker-cache");
        } else if (arg == "--reconnect") {
            die("--reconnect only applies to --worker-connect mode");
        } else if (arg == "--heartbeat-interval") {
            die("--heartbeat-interval is internal to --worker mode");
        } else if (arg == "--out") {
            out_path = argValue(argc, argv, i, "--out");
        } else if (arg == "--resume") {
            resume_path = argValue(argc, argv, i, "--resume");
        } else if (arg == "--dry-run") {
            dry_run = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            usage(argv[0]);
            die("unknown option '" + arg + "'");
        }
    }

    // Fail fast on empty axes or invalid geometries — a grid that cannot
    // run must never emit an empty report.
    std::string grid_error;
    if (!validateGrid(grid, grid_error))
        die(grid_error);

    ResumeCache cache;
    bool have_cache = false;
    if (!resume_path.empty()) {
        std::ifstream in(resume_path, std::ios::binary);
        if (!in)
            die("cannot open resume report '" + resume_path + "'");
        std::stringstream ss;
        ss << in.rdbuf();
        std::string err;
        if (!cache.load(ss.str(), err))
            die("cannot resume from '" + resume_path + "': " + err);
        std::fprintf(stderr, "resume: %zu cached grid points loaded from %s\n",
                     cache.size(), resume_path.c_str());
        have_cache = true;
    }

    // An existing journal means a previous (possibly killed) invocation
    // of this campaign: replay its completed runs into the cache before
    // simulating anything, then keep appending to it.
    std::ofstream journal_out;
    if (!journal_path.empty()) {
        if (std::ifstream jin(journal_path, std::ios::binary); jin) {
            std::stringstream ss;
            ss << jin.rdbuf();
            const std::size_t n = cache.loadJournal(ss.str());
            if (n > 0) {
                std::fprintf(stderr,
                             "journal: %zu completed runs recovered "
                             "from %s\n", n, journal_path.c_str());
                have_cache = true;
            }
        }
        journal_out.open(journal_path, std::ios::binary | std::ios::app);
        if (!journal_out)
            die("cannot open journal '" + journal_path + "' for append");
    }

    if (dry_run) {
        std::string listing;
        try {
            listing = campaignDryRun(grid, have_cache ? &cache : nullptr);
            if (workers > 0 || !coord_config.listenEndpoint.empty()) {
                listing += "\n" + shardPlanListing(
                    grid, workers > 0 ? workers : 1,
                    have_cache ? &cache : nullptr);
            }
            if (!coord_config.listenEndpoint.empty()) {
                listing += "listen: " + coord_config.listenEndpoint +
                           " (remote --worker-connect workers join the "
                           "pull queue dynamically; hello token " +
                           (coord_config.helloToken.empty() ? "unset"
                                                            : "set") +
                           ")\n";
            }
        } catch (const std::exception &e) {
            die(e.what());
        }
        std::fwrite(listing.data(), 1, listing.size(), stdout);
        return 0;
    }

    installSignalHandlers();

    const std::size_t total = grid.size();
    std::string traffic_dim;
    if (gridHasTraffic(grid)) {
        traffic_dim =
            " x " + std::to_string(grid.traffics.size()) + " traffics";
    }
    const bool coordinated =
        workers > 0 || !coord_config.listenEndpoint.empty();
    std::string exec_mode = coordinated
                                ? "workers=" + std::to_string(workers)
                                : "jobs=" + std::to_string(jobs);
    if (!coord_config.listenEndpoint.empty())
        exec_mode += ", listening on " + coord_config.listenEndpoint;
    std::fprintf(stderr,
                 "campaign: %zu runs (%zu systems x %zu scenarios x %zu "
                 "scales x %zu seeds x %zu geometries x %zu exec points x "
                 "%zu thetas%s), %s\n",
                 total, grid.systems.size(), grid.scenarios.size(),
                 grid.log2Tuples.size(), grid.seeds.size(),
                 grid.geometries.size(), grid.execOverrides.size(),
                 grid.zipfThetas.size(), traffic_dim.c_str(),
                 exec_mode.c_str());

    // One progress callback for both execution paths: journal first
    // (crash safety), then the human-readable line. Cached grid points
    // never reach it — they are already in the journal or the resume
    // report.
    std::size_t done = 0;
    const bool multi_axis = grid.geometries.size() > 1 ||
                            grid.execOverrides.size() > 1 ||
                            grid.zipfThetas.size() > 1;
    auto on_run_done = [&](const CampaignRun &r) {
        if (journal_out.is_open()) {
            journal_out << campaignJournalLine(r.job, r.result);
            journal_out.flush();
        }
        if (quiet)
            return;
        ++done;
        if (multi_axis) {
            std::fprintf(stderr, "[%zu/%zu] %s on %s (%s, %s, zipf %g): "
                         "%s ms\n",
                         done, total, r.result.op.c_str(),
                         r.result.system.c_str(),
                         geometryName(r.job.geometry).c_str(),
                         r.job.exec.name().c_str(), r.job.zipfTheta,
                         fmt(r.result.seconds() * 1e3, 3).c_str());
        } else {
            std::fprintf(stderr, "[%zu/%zu] %s on %s: %s ms\n", done,
                         total, r.result.op.c_str(),
                         r.result.system.c_str(),
                         fmt(r.result.seconds() * 1e3, 3).c_str());
        }
    };

    CampaignReport report;
    try {
        if (coordinated) {
            coord_config.workers = workers;
            CampaignCoordinator coordinator(grid, coord_config);
            // Bind before run() so network-setup failures exit with
            // their own code instead of reading as a campaign error.
            std::string listen_error;
            if (!coordinator.listen(listen_error)) {
                std::fprintf(stderr, "mondrian_campaign: %s\n",
                             listen_error.c_str());
                return kExitNetwork;
            }
            if (have_cache)
                coordinator.setResume(&cache);
            coordinator.setAbort(&g_interrupt);
            coordinator.onRunDone(on_run_done);
            report = coordinator.run();
        } else {
            CampaignRunner campaign(grid);
            if (have_cache)
                campaign.setResume(&cache);
            campaign.setAbort(&g_interrupt);
            campaign.onRunDone(on_run_done);
            report = campaign.run(jobs);
        }
    } catch (const std::exception &e) {
        die(std::string("campaign failed: ") + e.what());
    }
    if (report.cachedRuns > 0) {
        std::fprintf(stderr, "resume: %zu of %zu grid points reused\n",
                     report.cachedRuns, total);
    }
    if (report.workerCacheHits > 0) {
        std::fprintf(stderr,
                     "worker-cache: %zu results served from worker "
                     "caches without re-simulation\n",
                     report.workerCacheHits);
    }

    if (report.aborted) {
        // Completed runs are safe in the journal (if one was given);
        // don't overwrite a good report with a partial document.
        std::fprintf(stderr,
                     "campaign: interrupted — %s; rerun with the same "
                     "grid to continue\n",
                     journal_path.empty()
                         ? "no journal was kept"
                         : ("journal " + journal_path + " is "
                            "flushed").c_str());
        return 3;
    }

    std::string json = campaignReportJson(report);

    if (out_path.empty()) {
        std::fwrite(json.data(), 1, json.size(), stdout);
        std::fputc('\n', stdout);
    } else {
        std::string write_error;
        if (!writeTextFile(out_path, json + '\n', write_error))
            die(write_error);
        std::fprintf(stderr, "report written to %s (%zu bytes)\n",
                     out_path.c_str(), json.size() + 1);
    }

    if (!report.summaries.empty()) {
        std::fprintf(stderr, "\nsummary vs. %s baseline:\n%s",
                     report.baseline.c_str(),
                     campaignSummaryTable(report).c_str());
    }

    if (!report.failedRuns.empty()) {
        std::fprintf(stderr,
                     "campaign: %zu runs failed permanently (see the "
                     "report's failed_runs array)\n",
                     report.failedRuns.size());
        return 4;
    }
    return 0;
}
