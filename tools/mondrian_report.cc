/**
 * @file
 * mondrian_report: axis-aware analysis of campaign reports.
 *
 * Reads the JSON reports mondrian_campaign writes (schema
 * mondrian-campaign-v1 through -v4) and renders them as analyzable data:
 *
 *   mondrian_report summary report.json
 *       Summary recomputed from the runs (paired/total counts, dropped
 *       comparisons surfaced) as a markdown table. Reports carrying
 *       per-stage sub-results (v3 pipeline scenarios) get an additional
 *       per-stage breakdown table; reports carrying served metrics (v4
 *       traffic sweeps) get a served-traffic table (QPS, latency
 *       percentiles, energy per query).
 *
 *   mondrian_report sensitivity report.json [--axis A] [--baseline SYS]
 *       Per-axis sensitivity tables: for each value of one axis, the
 *       geomean speedup / perf-per-watt of each system vs. the baseline
 *       with all other axes held fixed. Default: every axis the report
 *       actually sweeps (plus single-value axes when --axis asks).
 *
 *   mondrian_report diff a.json b.json [--rtol 1e-6]
 *       Field-by-field comparison (per-run and per-summary) under a
 *       relative tolerance. Empty output + exit 0 when the reports
 *       agree; differences + exit 1 otherwise — the structured
 *       replacement for text-diffing golden summaries.
 *
 *   mondrian_report csv report.json [--axis A] [--baseline SYS]
 *       [--stages] [--out F]
 *       Chart-ready CSV: one row per run (default), a sensitivity table
 *       with --axis, or one row per (run, stage) with --stages.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/file_io.hh"
#include "common/logging.hh"
#include "system/analysis.hh"
#include "system/report_model.hh"

using namespace mondrian;

namespace {

void
usage(const char *prog)
{
    std::fprintf(stderr,
        "usage: %s <command> [options]\n"
        "\n"
        "Commands:\n"
        "  summary REPORT            recomputed summary (markdown)\n"
        "  sensitivity REPORT        per-axis sensitivity tables (markdown)\n"
        "  diff A B                  compare two reports; exit 1 on any\n"
        "                            difference beyond --rtol\n"
        "  csv REPORT                chart-ready CSV (runs, or one axis's\n"
        "                            sensitivity table with --axis)\n"
        "\n"
        "Options:\n"
        "  --axis A                  axis to analyze: geometry exec\n"
        "                            zipf-theta scale scenario seed traffic\n"
        "                            ('op' is accepted as an alias for\n"
        "                            scenario; sensitivity: default =\n"
        "                            every swept axis; csv: default =\n"
        "                            per-run rows)\n"
        "  --stages                  csv: one row per (run, stage) of\n"
        "                            pipeline scenario runs\n"
        "  --baseline SYS            baseline system (default: the\n"
        "                            report's own, usually cpu)\n"
        "  --rtol X                  diff relative tolerance (default 1e-6)\n"
        "  --out PATH                write output to PATH (default stdout)\n"
        "  --help                    this text\n",
        prog);
}

[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "mondrian_report: %s\n", msg.c_str());
    std::exit(2);
}

std::string
argValue(int argc, char **argv, int &i, const char *flag)
{
    if (i + 1 >= argc)
        die(std::string(flag) + " requires a value");
    return argv[++i];
}

ReportModel
loadOrDie(const std::string &path)
{
    ReportModel m;
    std::string error;
    if (!loadReportFile(path, m, error))
        die(error);
    return m;
}

/** The report's baseline unless overridden; summary/sensitivity/csv
 *  pairing needs one. */
std::string
resolveBaseline(const ReportModel &m, const std::string &override_sys,
                bool required)
{
    std::string baseline = override_sys.empty() ? m.baseline : override_sys;
    if (baseline.empty()) {
        if (required) {
            die("report has no baseline system; pass --baseline "
                "(one of the report's systems)");
        }
        return baseline;
    }
    bool known = false;
    for (const std::string &sys : m.systems)
        known = known || sys == baseline;
    if (!known) {
        // An explicitly requested (or required) baseline must exist; a
        // stored baseline absent from the runs (hand-truncated partial
        // report) just means no pairing.
        if (!override_sys.empty() || required)
            die("baseline '" + baseline + "' has no runs in the report");
        return "";
    }
    return baseline;
}

void
emit(const std::string &text, const std::string &out_path)
{
    if (out_path.empty()) {
        std::fwrite(text.data(), 1, text.size(), stdout);
        return;
    }
    std::string error;
    if (!writeTextFile(out_path, text, error))
        die(error);
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    if (argc < 2) {
        usage(argv[0]);
        return 2;
    }
    const std::string command = argv[1];
    if (command == "--help" || command == "-h" || command == "help") {
        usage(argv[0]);
        return 0;
    }

    std::vector<std::string> positional;
    std::string axis_arg, baseline_arg, out_path;
    double rtol = 1e-6;
    bool stages = false;
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--axis") {
            axis_arg = argValue(argc, argv, i, "--axis");
        } else if (arg == "--stages") {
            stages = true;
        } else if (arg == "--baseline") {
            baseline_arg = argValue(argc, argv, i, "--baseline");
        } else if (arg == "--rtol") {
            std::string v = argValue(argc, argv, i, "--rtol");
            char *end = nullptr;
            rtol = std::strtod(v.c_str(), &end);
            if (end == v.c_str() || *end != '\0' || !(rtol >= 0.0))
                die("--rtol: '" + v + "' is not a non-negative number");
        } else if (arg == "--out") {
            out_path = argValue(argc, argv, i, "--out");
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            usage(argv[0]);
            die("unknown option '" + arg + "'");
        } else {
            positional.push_back(arg);
        }
    }

    Axis axis = Axis::kGeometry;
    bool have_axis = !axis_arg.empty();
    if (have_axis && !axisFromName(axis_arg, axis)) {
        die("unknown axis '" + axis_arg +
            "' (geometry exec zipf-theta scale scenario seed traffic)");
    }

    if (command == "summary") {
        if (positional.size() != 1)
            die("summary takes exactly one report");
        ReportModel m = loadOrDie(positional[0]);
        std::string baseline = resolveBaseline(m, baseline_arg, true);
        std::string out = "Summary of " + positional[0] + " (" +
                          std::to_string(m.runs.size()) + " runs, vs " +
                          baseline + "):\n\n";
        out += renderSummaryMarkdown(recomputeSummary(m, baseline));
        // Pipeline scenario runs carry per-stage sub-results — append
        // the per-stage breakdown so the summary shows where in the
        // pipeline each system wins.
        auto breakdown = stageBreakdown(m, baseline);
        if (!breakdown.empty()) {
            out += "\n### Stages (vs " + baseline + ")\n\n";
            out += renderStageBreakdownMarkdown(breakdown);
        }
        // Served-workload runs (v4 traffic sweeps) report throughput and
        // tail latency — the open-loop view a speedup geomean cannot show.
        std::string served = renderServedMarkdown(m);
        if (!served.empty()) {
            out += "\n### Served traffic\n\n";
            out += served;
        }
        emit(out, out_path);
        return 0;
    }

    if (command == "sensitivity") {
        if (positional.size() != 1)
            die("sensitivity takes exactly one report");
        ReportModel m = loadOrDie(positional[0]);
        std::string baseline = resolveBaseline(m, baseline_arg, true);
        std::string out;
        for (Axis a : allAxes()) {
            if (have_axis && a != axis)
                continue;
            // Without --axis, single-value axes add nothing a summary
            // doesn't already say — show the swept ones.
            SensitivityTable t = sensitivity(m, a, baseline);
            if (!have_axis && t.rows.size() < 2)
                continue;
            out += std::string("### Sensitivity: ") + axisName(a) +
                   " (vs " + baseline + ")\n\n";
            out += renderSensitivityMarkdown(t);
            out += "\n";
        }
        if (out.empty()) {
            out = "No swept axes in " + positional[0] +
                  " (every axis has a single value); pass --axis to "
                  "render one anyway.\n";
        }
        emit(out, out_path);
        return 0;
    }

    if (command == "diff") {
        if (positional.size() != 2)
            die("diff takes exactly two reports");
        ReportModel a = loadOrDie(positional[0]);
        ReportModel b = loadOrDie(positional[1]);
        ReportDiff d = diffReports(a, b, rtol);
        emit(renderDiff(d), out_path);
        return d.empty() ? 0 : 1;
    }

    if (command == "csv") {
        if (positional.size() != 1)
            die("csv takes exactly one report");
        if (stages && have_axis)
            die("--stages and --axis are mutually exclusive");
        ReportModel m = loadOrDie(positional[0]);
        // Per-run and per-stage CSV work without a baseline (pairing
        // columns empty); a sensitivity CSV needs one.
        std::string baseline = resolveBaseline(m, baseline_arg, have_axis);
        std::string out;
        if (stages)
            out = stagesCsv(m);
        else if (have_axis)
            out = sensitivityCsv(sensitivity(m, axis, baseline));
        else
            out = runsCsv(m, baseline);
        emit(out, out_path);
        return 0;
    }

    usage(argv[0]);
    die("unknown command '" + command + "'");
}
